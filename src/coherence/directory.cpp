/**
 * @file
 * Shared-page directory implementation
 * (see directory.hpp).
 */

#include "coherence/directory.hpp"

namespace tg::coherence {

const char *
protocolKindName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::None: return "none";
      case ProtocolKind::Naive: return "naive-multicast";
      case ProtocolKind::OwnerCounter: return "owner-counter";
      case ProtocolKind::GalacticaRing: return "galactica-ring";
      case ProtocolKind::Invalidate: return "invalidate";
    }
    return "?";
}

PAddr
PageEntry::copyFrame(NodeId n) const
{
    auto it = copies.find(n);
    if (it == copies.end())
        panic("no copy of page %llx at node %u", (unsigned long long)home,
              unsigned(n));
    return it->second;
}

NodeId
PageEntry::ringNext(NodeId n) const
{
    if (ring.empty())
        panic("ringNext on page %llx with no ring", (unsigned long long)home);
    for (std::size_t i = 0; i < ring.size(); ++i) {
        if (ring[i] == n)
            return ring[(i + 1) % ring.size()];
    }
    panic("node %u not in sharing ring of page %llx", unsigned(n),
          (unsigned long long)home);
}

Directory::Directory(System &sys, const std::string &name)
    : SimObject(sys, name)
{
}

Directory::~Directory() = default;

PageEntry &
Directory::create(PAddr home_frame, NodeId owner, ProtocolKind kind,
                  Protocol *protocol)
{
    if (_byHome.count(home_frame))
        panic("%s: duplicate page entry %llx", _name.c_str(),
              (unsigned long long)home_frame);
    auto entry = std::make_unique<PageEntry>();
    entry->home = home_frame;
    entry->owner = owner;
    entry->kind = kind;
    entry->protocol = protocol;
    PageEntry *raw = entry.get();
    _byHome.emplace(home_frame, std::move(entry));
    addCopy(*raw, owner, home_frame);
    return *raw;
}

void
Directory::destroy(PAddr home_frame)
{
    auto it = _byHome.find(home_frame);
    if (it == _byHome.end())
        return;
    for (auto &[node, frame] : it->second->copies)
        _byFrame.erase(frame);
    _byHome.erase(it);
}

void
Directory::addCopy(PageEntry &e, NodeId node, PAddr frame)
{
    e.copies[node] = frame;
    _byFrame[frame] = &e;
}

void
Directory::removeCopy(PageEntry &e, NodeId node)
{
    auto it = e.copies.find(node);
    if (it == e.copies.end())
        return;
    _byFrame.erase(it->second);
    e.copies.erase(it);
}

PageEntry *
Directory::byHome(PAddr home_frame)
{
    auto it = _byHome.find(home_frame);
    return it == _byHome.end() ? nullptr : it->second.get();
}

PageEntry *
Directory::byFrame(PAddr frame)
{
    auto it = _byFrame.find(frame);
    return it == _byFrame.end() ? nullptr : it->second;
}

PageEntry *
Directory::byAddr(PAddr addr)
{
    return byFrame(pageOf(addr));
}

std::vector<const PageEntry *>
Directory::entries() const
{
    std::vector<const PageEntry *> out;
    out.reserve(_byHome.size());
    for (const auto &[home, e] : _byHome)
        out.push_back(e.get());
    return out;
}

PageEntry &
Directory::restoreEntry(PAddr home_frame, NodeId owner, ProtocolKind kind,
                        Protocol *protocol,
                        const std::map<NodeId, PAddr> &copies,
                        const std::vector<NodeId> &ring)
{
    PageEntry *e = byHome(home_frame);
    if (!e) {
        e = &create(home_frame, owner, kind, protocol);
    } else if (e->kind != kind) {
        panic("%s: checkpoint entry %llx has protocol %s, replayed setup "
              "built %s",
              _name.c_str(), (unsigned long long)home_frame,
              protocolKindName(kind), protocolKindName(e->kind));
    }
    // Drop the stale frame index before overwriting the copy set.
    for (const auto &[node, frame] : e->copies)
        _byFrame.erase(frame);
    e->owner = owner;
    e->copies = copies;
    e->ring = ring;
    for (const auto &[node, frame] : e->copies)
        _byFrame[frame] = e;
    return *e;
}

void
Directory::observe(std::function<void(const ApplyEvent &)> cb)
{
    _observers.push_back(std::move(cb));
}

void
Directory::notifyApply(NodeId node, PAddr home_addr, Word value,
                       NodeId origin)
{
    if (_observers.empty())
        return;
    const ApplyEvent ev{now(), node, home_addr, value, origin};
    for (auto &o : _observers)
        o(ev);
}

} // namespace tg::coherence

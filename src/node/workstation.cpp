/**
 * @file
 * Workstation assembly: CPU + memory + MMU + HIB wired
 * to the network endpoint.
 */

#include "node/workstation.hpp"

#include "node/address.hpp"

namespace tg::node {

Workstation::Workstation(System &sys, const std::string &name, NodeId id)
    : SimObject(sys, name), _id(id), _mainNext(kMainBase), _shmNext(kShmBase)
{
    _mem = std::make_unique<MainMemory>(sys, name + ".mem");
    _cache = std::make_unique<Cache>(sys, name + ".cache");
    _mmu = std::make_unique<Mmu>(sys, name + ".mmu");
    _tc = std::make_unique<TurboChannel>(sys, name + ".tc");
    _hib = std::make_unique<hib::Hib>(sys, name + ".hib", id, *_mem, *_tc);
    _cpu = std::make_unique<Cpu>(sys, name + ".cpu", id, *_mmu, *_cache,
                                 *_mem, *_tc, *_hib);
    // The default process address space.
    newAddressSpace();
    // Leave the first main-memory page unmapped so that address 0 stays
    // an error, and reserve a little room for "kernel" use.
    _mainNext += config().pageBytes * 4;
}

AddressSpace &
Workstation::newAddressSpace()
{
    _spaces.push_back(
        std::make_unique<AddressSpace>(_nextAsid++, config().pageBytes));
    return *_spaces.back();
}

PAddr
Workstation::allocMainFrames(std::size_t pages)
{
    const PAddr base = _mainNext;
    _mainNext += PAddr(pages) * config().pageBytes;
    if (_mainNext >= kShmBase)
        fatal("%s: out of main-memory frames", _name.c_str());
    return makePAddr(_id, base);
}

PAddr
Workstation::allocShmFrames(std::size_t pages)
{
    const PAddr base = _shmNext;
    _shmNext += PAddr(pages) * config().pageBytes;
    if (_shmNext >= kHibRegBase)
        fatal("%s: out of shared-memory frames", _name.c_str());
    return makePAddr(_id, base);
}

} // namespace tg::node

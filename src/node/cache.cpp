/**
 * @file
 * Direct-mapped data cache model.
 */

#include "node/cache.hpp"

namespace tg::node {

Cache::Cache(System &sys, const std::string &name) : SimObject(sys, name)
{
    const auto &cfg = config();
    std::size_t lines =
        cfg.cacheBytes ? cfg.cacheBytes / cfg.cacheLineBytes : 1;
    if (lines == 0)
        lines = 1;
    _tags.assign(lines, 0);
}

Tick
Cache::access(PAddr paddr, bool write)
{
    const auto &cfg = config();
    if (cfg.cacheBytes == 0)
        return cfg.memAccess;

    const PAddr line = paddr / cfg.cacheLineBytes;
    const std::size_t idx = indexOf(line);
    const bool hit = _tags[idx] == line + 1;

    if (hit)
        ++_hits;
    else
        ++_misses;
    _tags[idx] = line + 1; // allocate on read or write

    if (write) {
        // Write-through: the store always reaches memory; a write buffer
        // hides part of the latency, modelled as the cache-hit cost when
        // the line is present.
        return hit ? cfg.cacheHit : cfg.memAccess;
    }
    return hit ? cfg.cacheHit : cfg.memAccess;
}

void
Cache::invalidatePage(PAddr paddr)
{
    const auto &cfg = config();
    const PAddr page = paddr / cfg.pageBytes;
    const PAddr first_line = page * cfg.pageBytes / cfg.cacheLineBytes;
    const PAddr lines_per_page = cfg.pageBytes / cfg.cacheLineBytes;
    for (PAddr l = first_line; l < first_line + lines_per_page; ++l) {
        const std::size_t idx = indexOf(l);
        if (_tags[idx] == l + 1)
            _tags[idx] = 0;
    }
}

void
Cache::invalidateAll()
{
    std::fill(_tags.begin(), _tags.end(), 0);
}

void
Cache::restoreState(const std::vector<PAddr> &tags, std::uint64_t hits,
                    std::uint64_t misses)
{
    if (tags.size() != _tags.size())
        panic("%s: checkpoint tag array has %zu lines, cache has %zu "
              "(different configuration?)",
              _name.c_str(), tags.size(), _tags.size());
    _tags = tags;
    _hits = hits;
    _misses = misses;
}

} // namespace tg::node

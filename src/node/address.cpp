/**
 * @file
 * Global physical address helpers (node/offset packing,
 * shadow flag).
 */

#include "node/address.hpp"

#include <cstdio>

namespace tg::node {

std::string
paddrToString(PAddr pa)
{
    char buf[64];
    const char *region = "?";
    switch (regionOf(offsetOf(pa))) {
      case Region::Main: region = "main"; break;
      case Region::Shm: region = "shm"; break;
      case Region::HibReg: region = "hib"; break;
    }
    std::snprintf(buf, sizeof(buf), "%sn%u:%s+%llx", isShadow(pa) ? "~" : "",
                  unsigned(nodeOf(pa)), region,
                  (unsigned long long)(offsetOf(pa) & 0xffff'ffffULL));
    return buf;
}

} // namespace tg::node

/**
 * @file
 * Sparse chunked main-memory store.
 */

#include "node/main_memory.hpp"

#include <algorithm>

namespace tg::node {

MainMemory::MainMemory(System &sys, const std::string &name)
    : SimObject(sys, name)
{
}

const std::vector<Word> &
MainMemory::chunkFor(PAddr offset) const
{
    const PAddr key = offset / (kChunkWords * 8);
    auto &chunk = _chunks[key];
    if (chunk.empty())
        chunk.resize(kChunkWords, 0);
    return chunk;
}

std::vector<Word> &
MainMemory::chunkFor(PAddr offset)
{
    return const_cast<std::vector<Word> &>(
        static_cast<const MainMemory *>(this)->chunkFor(offset));
}

Word
MainMemory::read(PAddr offset) const
{
    if (offset % 8 != 0)
        panic("%s: unaligned read at %llx", _name.c_str(),
              (unsigned long long)offset);
    return chunkFor(offset)[(offset / 8) % kChunkWords];
}

void
MainMemory::write(PAddr offset, Word value)
{
    if (offset % 8 != 0)
        panic("%s: unaligned write at %llx", _name.c_str(),
              (unsigned long long)offset);
    chunkFor(offset)[(offset / 8) % kChunkWords] = value;
}

void
MainMemory::copy(PAddr dst_offset, PAddr src_offset, std::size_t words)
{
    for (std::size_t i = 0; i < words; ++i)
        write(dst_offset + i * 8, read(src_offset + i * 8));
}

std::size_t
MainMemory::touchedBytes() const
{
    return _chunks.size() * kChunkWords * 8;
}

std::vector<std::pair<PAddr, Word>>
MainMemory::dumpWords() const
{
    std::vector<PAddr> keys;
    keys.reserve(_chunks.size());
    for (const auto &[key, chunk] : _chunks)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());

    std::vector<std::pair<PAddr, Word>> out;
    for (PAddr key : keys) {
        const auto &chunk = _chunks.at(key);
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            if (chunk[i] != 0)
                out.emplace_back(key * kChunkWords * 8 + i * 8, chunk[i]);
        }
    }
    return out;
}

} // namespace tg::node

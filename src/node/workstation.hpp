/**
 * @file
 * One workstation: CPU + MMU + cache + main memory + TurboChannel + HIB.
 *
 * Mirrors a DEC 3000 model 300 ("Pelican") with a Telegraphos HIB in a
 * TurboChannel slot (paper section 2.1, figure 1).
 */

#ifndef TELEGRAPHOS_NODE_WORKSTATION_HPP
#define TELEGRAPHOS_NODE_WORKSTATION_HPP

#include <memory>
#include <vector>

#include "hib/hib.hpp"
#include "node/cache.hpp"
#include "node/cpu.hpp"
#include "node/main_memory.hpp"
#include "node/mmu.hpp"
#include "node/turbochannel.hpp"

namespace tg::node {

/** A complete workstation node. */
class Workstation : public SimObject
{
  public:
    Workstation(System &sys, const std::string &name, NodeId id);

    NodeId id() const { return _id; }

    MainMemory &mem() { return *_mem; }
    Cache &cache() { return *_cache; }
    Mmu &mmu() { return *_mmu; }
    TurboChannel &tc() { return *_tc; }
    hib::Hib &hib() { return *_hib; }
    Cpu &cpu() { return *_cpu; }

    /** Create a new process address space on this node. */
    AddressSpace &newAddressSpace();

    /** Default address space threads run in unless told otherwise. */
    AddressSpace &defaultAddressSpace() { return *_spaces.front(); }

    /** Allocate @p pages frames of main memory; returns a global PA. */
    PAddr allocMainFrames(std::size_t pages);

    /** Allocate @p pages frames of Telegraphos shared memory. */
    PAddr allocShmFrames(std::size_t pages);

    // ------------------------------------------------------------------
    // Checkpointing (DESIGN.md section 14.5)
    // ------------------------------------------------------------------

    std::uint32_t nextAsid() const { return _nextAsid; }
    PAddr mainNext() const { return _mainNext; }
    PAddr shmNext() const { return _shmNext; }

    /** All address spaces created so far (creation = asid order). */
    const std::vector<std::unique_ptr<AddressSpace>> &spaces() const
    {
        return _spaces;
    }

    /** Restore the allocation cursors captured by a checkpoint. */
    void
    restoreAllocators(std::uint32_t next_asid, PAddr main_next,
                      PAddr shm_next)
    {
        _nextAsid = next_asid;
        _mainNext = main_next;
        _shmNext = shm_next;
    }

  private:
    NodeId _id;
    std::unique_ptr<MainMemory> _mem;
    std::unique_ptr<Cache> _cache;
    std::unique_ptr<Mmu> _mmu;
    std::unique_ptr<TurboChannel> _tc;
    std::unique_ptr<hib::Hib> _hib;
    std::unique_ptr<Cpu> _cpu;

    std::vector<std::unique_ptr<AddressSpace>> _spaces;
    std::uint32_t _nextAsid = 1;
    PAddr _mainNext;
    PAddr _shmNext;
};

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_WORKSTATION_HPP

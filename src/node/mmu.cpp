/**
 * @file
 * MMU + TLB model: address-space page tables and refill
 * costs.
 */

#include "node/mmu.hpp"

#include <algorithm>

namespace tg::node {

void
AddressSpace::map(VAddr va, const Pte &pte)
{
    _pages[vpnOf(va)] = pte;
}

void
AddressSpace::mapRange(VAddr va, std::size_t pages, Pte pte)
{
    for (std::size_t i = 0; i < pages; ++i) {
        map(va + i * _pageBytes, pte);
        pte.frame += _pageBytes;
    }
}

void
AddressSpace::unmap(VAddr va)
{
    _pages.erase(vpnOf(va));
}

Pte
AddressSpace::lookup(VAddr va) const
{
    auto it = _pages.find(vpnOf(va));
    return it == _pages.end() ? Pte{} : it->second;
}

Pte *
AddressSpace::find(VAddr va)
{
    auto it = _pages.find(vpnOf(va));
    return it == _pages.end() ? nullptr : &it->second;
}

std::vector<std::pair<VAddr, Pte>>
AddressSpace::dumpPages() const
{
    std::vector<std::pair<VAddr, Pte>> out(_pages.begin(), _pages.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

void
AddressSpace::restorePages(const std::vector<std::pair<VAddr, Pte>> &pages)
{
    _pages.clear();
    for (const auto &[vpn, pte] : pages)
        _pages[vpn] = pte;
}

Mmu::Mmu(System &sys, const std::string &name) : SimObject(sys, name) {}

void
Mmu::setAddressSpace(AddressSpace *as)
{
    _as = as;
}

const Pte *
Mmu::cachedLookup(VAddr vpn)
{
    for (auto &e : _tlb) {
        if (e.asid == _as->asid() && e.vpn == vpn) {
            ++_hits;
            return &e.pte;
        }
    }
    ++_misses;
    Pte pte = _as->lookup(vpn * _as->pageBytes());
    if (pte.mode == PageMode::Invalid)
        return nullptr;
    _tlb.push_back(TlbEntry{_as->asid(), vpn, pte});
    while (_tlb.size() > config().tlbEntries)
        _tlb.pop_front();
    return &_tlb.back().pte;
}

Translation
Mmu::translate(VAddr va, bool is_write)
{
    Translation t;
    if (!_as)
        panic("%s: translate with no address space", _name.c_str());

    t.shadow = (va & kShadowBit) != 0;
    const VAddr base = va & ~kShadowBit;
    const VAddr vpn = base / _as->pageBytes();

    const std::uint64_t misses_before = _misses;
    const Pte *pte = cachedLookup(vpn);
    t.ticks = (_misses > misses_before) ? config().tlbMiss : 0;

    if (!pte)
        return t; // fault: unmapped

    // Shadow accesses must be stores (there is nothing to load from
    // shadow space) and require write permission on the base mapping.
    if (t.shadow && !is_write)
        return t;
    if (is_write && !pte->write)
        return t;
    if (t.shadow && pte->mode != PageMode::SharedRemote &&
        pte->mode != PageMode::SharedLocal) {
        // Only shared data has meaningful shadow physical addresses.
        return t;
    }

    t.ok = true;
    t.pte = *pte;
    t.paddr = pte->frame + (base % _as->pageBytes());
    if (t.shadow)
        t.paddr |= kShadowBit;
    return t;
}

void
Mmu::flushPage(std::uint32_t asid, VAddr va)
{
    // Independent of the *current* address space: the OS flushes
    // mappings of processes that are not necessarily running.
    const VAddr vpn = (va & ~kShadowBit) / config().pageBytes;
    for (auto it = _tlb.begin(); it != _tlb.end();) {
        if (it->asid == asid && it->vpn == vpn)
            it = _tlb.erase(it);
        else
            ++it;
    }
}

void
Mmu::flushAsid(std::uint32_t asid)
{
    for (auto it = _tlb.begin(); it != _tlb.end();) {
        if (it->asid == asid)
            it = _tlb.erase(it);
        else
            ++it;
    }
}

void
Mmu::flushAll()
{
    _tlb.clear();
}

std::vector<Mmu::TlbSnapshot>
Mmu::dumpTlb() const
{
    std::vector<TlbSnapshot> out;
    out.reserve(_tlb.size());
    for (const auto &e : _tlb)
        out.push_back(TlbSnapshot{e.asid, e.vpn, e.pte});
    return out;
}

void
Mmu::restoreTlb(const std::vector<TlbSnapshot> &entries, std::uint64_t hits,
                std::uint64_t misses)
{
    _tlb.clear();
    for (const auto &e : entries)
        _tlb.push_back(TlbEntry{e.asid, e.vpn, e.pte});
    _hits = hits;
    _misses = misses;
}

} // namespace tg::node

/**
 * @file
 * TurboChannel I/O bus model.
 *
 * The HIB plugs into the TurboChannel of a DEC 3000/300 (paper section
 * 2.1).  The bus is a shared resource between the CPU's programmed-I/O
 * accesses and the HIB's DMA into main memory; transactions are granted
 * FIFO and each occupies the bus for its transfer time.  This contention
 * is what makes remote reads so much more expensive than remote writes in
 * the paper's measurements.
 */

#ifndef TELEGRAPHOS_NODE_TURBOCHANNEL_HPP
#define TELEGRAPHOS_NODE_TURBOCHANNEL_HPP

#include <deque>

#include "sim/event.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace tg::node {

/** FIFO-arbitrated shared bus. */
class TurboChannel : public SimObject
{
  public:
    TurboChannel(System &sys, const std::string &name);

    /**
     * Request the bus for @p hold ticks; @p done runs when the
     * transaction completes (bus released).  @p traceId optionally tags
     * the transaction with a lifecycle-tracer operation id; the grant is
     * then recorded as a TcGrant span.
     */
    void transact(Tick hold, Fn<void()> done, std::uint64_t traceId = 0);

    /** Transactions completed. */
    std::uint64_t transactions() const { return _count; }

    /** Total ticks the bus was held. */
    Tick busyTicks() const { return _busyTicks; }

    /** Aggregate queueing delay experienced by transactions. */
    Tick waitTicks() const { return _waitTicks; }

  private:
    struct Txn
    {
        Tick hold;
        Tick enqueued;
        Fn<void()> done;
        std::uint64_t traceId;
    };

    void grantNext();

    std::deque<Txn> _queue;
    bool _busy = false;
    std::uint64_t _count = 0;
    Tick _busyTicks = 0;
    Tick _waitTicks = 0;
    /** Arbitration wait-time distribution (ticks), 64 x 100-tick buckets. */
    Histogram _waitHist{100.0, 64};
    std::uint16_t _traceComp = 0;
};

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_TURBOCHANNEL_HPP

/**
 * @file
 * Global physical and virtual address layout.
 *
 * Physical addresses (DESIGN.md section 4):
 *   bit  63     : shadow flag (Telegraphos II shadow addressing, paper 2.2.4)
 *   bits 62..48 : node id
 *   bits 47..0  : node-local offset
 *
 * Node-local offset regions:
 *   [kMainBase,  ...) : main memory (DRAM)
 *   [kShmBase,   ...) : Telegraphos shared memory (HIB SRAM on prototype I,
 *                       pinned main memory on prototype II)
 *   [kHibRegBase,...) : HIB control registers, contexts, counters
 *
 * Virtual addresses: bit 63 is the shadow flag (an address and its shadow
 * differ only in the highest bit, paper section 2.2.4).
 */

#ifndef TELEGRAPHOS_NODE_ADDRESS_HPP
#define TELEGRAPHOS_NODE_ADDRESS_HPP

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace tg::node {

constexpr int kNodeShift = 48;
constexpr PAddr kShadowBit = PAddr(1) << 63;
constexpr PAddr kOffsetMask = (PAddr(1) << kNodeShift) - 1;

/** Node-local region bases. */
constexpr PAddr kMainBase = 0x0000'0000'0000ULL;
constexpr PAddr kShmBase = 0x4000'0000'0000ULL;
constexpr PAddr kHibRegBase = 0x8000'0000'0000ULL;

/** What a node-local offset refers to. */
enum class Region
{
    Main,   ///< ordinary main memory
    Shm,    ///< Telegraphos shared memory
    HibReg, ///< HIB register space
};

/** Compose a global physical address. */
constexpr PAddr
makePAddr(NodeId node, PAddr offset)
{
    return (PAddr(node) << kNodeShift) | (offset & kOffsetMask);
}

/** Node owning a physical address (shadow bit ignored). */
constexpr NodeId
nodeOf(PAddr pa)
{
    return NodeId((pa & ~kShadowBit) >> kNodeShift);
}

/** Node-local offset of a physical address. */
constexpr PAddr
offsetOf(PAddr pa)
{
    return pa & kOffsetMask;
}

/** True if @p pa carries the shadow flag. */
constexpr bool
isShadow(PAddr pa)
{
    return (pa & kShadowBit) != 0;
}

/** Strip the shadow flag (what the HIB does on capture, paper 2.2.4). */
constexpr PAddr
stripShadow(PAddr pa)
{
    return pa & ~kShadowBit;
}

/** Region a node-local offset falls into. */
constexpr Region
regionOf(PAddr offset)
{
    if (offset >= kHibRegBase)
        return Region::HibReg;
    if (offset >= kShmBase)
        return Region::Shm;
    return Region::Main;
}

/** Pretty-print a physical address for traces. */
std::string paddrToString(PAddr pa);

// ---------------------------------------------------------------------
// HIB register offsets (within Region::HibReg)
// ---------------------------------------------------------------------

/** Telegraphos I: write 1/0 to enter/leave special mode (paper 2.2.4). */
constexpr PAddr kRegSpecialMode = kHibRegBase + 0x000;
/** Special-op opcode + datum registers (Telegraphos I launch). */
constexpr PAddr kRegSpecialOp = kHibRegBase + 0x008;
constexpr PAddr kRegSpecialDatum = kHibRegBase + 0x010;
constexpr PAddr kRegSpecialDatum2 = kHibRegBase + 0x018;
/** Reading this register launches the op and returns its result. */
constexpr PAddr kRegSpecialResult = kHibRegBase + 0x020;
/** Outstanding-operation counter (read by fence loops). */
constexpr PAddr kRegOutstanding = kHibRegBase + 0x028;

/**
 * Telegraphos II context register file.  Each context occupies its own
 * 8 KB page of HIB register space so that the OS can map a context into
 * exactly one process's address space — the mapping *is* the protection
 * (paper section 2.2.4).
 */
constexpr PAddr kRegContextBase = kHibRegBase + 0x10000;
constexpr PAddr kContextStride = 0x2000;
/** Offsets within one context block. */
constexpr PAddr kCtxOp = 0x00;     ///< opcode
constexpr PAddr kCtxDatum = 0x08;  ///< first operand
constexpr PAddr kCtxDatum2 = 0x10; ///< second operand (CAS new value)
constexpr PAddr kCtxDstPa = 0x18;  ///< destination PA (copy ops)
constexpr PAddr kCtxGo = 0x20;     ///< read to launch + fetch result
/** NIC collective descriptor registers (DESIGN.md section 15): the host
 *  writes op/group/root/datum, then reads kCtxCollGo, which arms the
 *  local CollEngine state machine and stalls until it completes. */
constexpr PAddr kCtxCollOp = 0x28;    ///< collective opcode
constexpr PAddr kCtxCollGroup = 0x30; ///< communicator group id
constexpr PAddr kCtxCollRoot = 0x38;  ///< root *rank* within the group
constexpr PAddr kCtxCollDatum = 0x40; ///< contribution word (reduce)
constexpr PAddr kCtxCollGo = 0x48;    ///< read to launch + fetch result

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_ADDRESS_HPP

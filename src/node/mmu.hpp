/**
 * @file
 * Per-process page tables and a per-CPU TLB.
 *
 * Protection in Telegraphos is entirely mapping-based (paper section 2.1):
 * the OS maps remote pages into the page tables of processes allowed to
 * access them; everything else faults in the TLB.  Shadow virtual
 * addresses (paper 2.2.4, Telegraphos II) differ from their base address
 * only in the highest bit: the MMU translates through the base mapping and
 * tags the physical address with the shadow flag, so a store to shadow
 * space both proves access rights and delivers the physical address to the
 * HIB in a single user-level instruction.
 */

#ifndef TELEGRAPHOS_NODE_MMU_HPP
#define TELEGRAPHOS_NODE_MMU_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "node/address.hpp"
#include "sim/sim_object.hpp"

namespace tg::node {

/** How accesses to a virtual page are handled. */
enum class PageMode : std::uint8_t
{
    Invalid,      ///< not mapped
    Private,      ///< cacheable local main memory (Telegraphos untouched)
    SharedLocal,  ///< Telegraphos shared memory with a local frame
    SharedRemote, ///< remote shared memory: access goes through the HIB
    HibControl,   ///< HIB register space (contexts, counters, special mode)
    VsmAbsent,    ///< VSM baseline: page not present, access faults
};

/** Page-table entry. */
struct Pte
{
    PAddr frame = 0;   ///< global physical address of the page base
    PageMode mode = PageMode::Invalid;
    bool write = true; ///< store permission
    bool eager = false;   ///< writes feed the HIB multicast unit (2.2.7)
    bool counted = false; ///< remote accesses hit the page counters (2.2.6)
};

/** One process's address space. */
class AddressSpace
{
  public:
    explicit AddressSpace(std::uint32_t asid, std::uint32_t page_bytes)
        : _asid(asid), _pageBytes(page_bytes)
    {
    }

    std::uint32_t asid() const { return _asid; }
    std::uint32_t pageBytes() const { return _pageBytes; }

    VAddr vpnOf(VAddr va) const { return (va & ~kShadowBit) / _pageBytes; }

    /** Install/overwrite the mapping for the page containing @p va. */
    void map(VAddr va, const Pte &pte);

    /** Map @p pages consecutive pages starting at @p va. */
    void mapRange(VAddr va, std::size_t pages, Pte pte);

    /** Remove the mapping for the page containing @p va. */
    void unmap(VAddr va);

    /** Page-table lookup; Invalid PTE if unmapped. */
    Pte lookup(VAddr va) const;

    /** Mutable PTE access for OS updates (nullptr if unmapped). */
    Pte *find(VAddr va);

    /** All mappings as (vpn, pte) pairs in ascending-vpn order
     *  (checkpointing, DESIGN.md section 14.5). */
    std::vector<std::pair<VAddr, Pte>> dumpPages() const;

    /** Replace the page table with a captured dump (vpn-keyed). */
    void restorePages(const std::vector<std::pair<VAddr, Pte>> &pages);

  private:
    std::uint32_t _asid;
    std::uint32_t _pageBytes;
    std::unordered_map<VAddr, Pte> _pages; // keyed by VPN
};

/** Result of an MMU translation. */
struct Translation
{
    bool ok = false;      ///< translation succeeded
    bool shadow = false;  ///< access was through shadow space
    Pte pte;              ///< entry used (valid when ok)
    PAddr paddr = 0;      ///< full physical address (with shadow flag)
    Tick ticks = 0;       ///< TLB lookup/refill time
};

/**
 * Per-CPU TLB + current-address-space pointer.
 *
 * Fully associative with FIFO replacement; misses charge the Alpha
 * PAL-refill cost and then walk the software page table.
 */
class Mmu : public SimObject
{
  public:
    Mmu(System &sys, const std::string &name);

    void setAddressSpace(AddressSpace *as);
    AddressSpace *addressSpace() const { return _as; }

    /**
     * Translate @p va for a load (@p is_write false) or store.
     * Shadow accesses (bit 63 set) require store permission and produce a
     * shadow-tagged physical address; shadow loads fail.
     */
    Translation translate(VAddr va, bool is_write);

    /** Drop any TLB entry for @p va in address space @p asid. */
    void flushPage(std::uint32_t asid, VAddr va);

    /** Drop all entries of one address space (context switch). */
    void flushAsid(std::uint32_t asid);

    /** Drop everything. */
    void flushAll();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    /** One TLB slot as captured by a checkpoint (DESIGN.md 14.5). */
    struct TlbSnapshot
    {
        std::uint32_t asid;
        VAddr vpn;
        Pte pte;
    };

    /** TLB contents oldest-first (the FIFO replacement order). */
    std::vector<TlbSnapshot> dumpTlb() const;

    /** Restore captured TLB contents (entries arrive oldest-first) and
     *  hit/miss counters. */
    void restoreTlb(const std::vector<TlbSnapshot> &entries,
                    std::uint64_t hits, std::uint64_t misses);

  private:
    struct TlbEntry
    {
        std::uint32_t asid;
        VAddr vpn;
        Pte pte;
    };

    const Pte *cachedLookup(VAddr vpn);

    AddressSpace *_as = nullptr;
    std::deque<TlbEntry> _tlb; // front = oldest
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_MMU_HPP

/**
 * @file
 * CPU model: coroutine thread scheduling, load/store issue
 * and the uncached-store write buffer.
 */

#include "node/cpu.hpp"

#include "hib/hib.hpp"
#include "node/address.hpp"

namespace tg::node {

Cpu::Cpu(System &sys, const std::string &name, NodeId node, Mmu &mmu,
         Cache &cache, MainMemory &mem, TurboChannel &tc, hib::Hib &hib)
    : SimObject(sys, name), _node(node), _mmu(mmu), _cache(cache), _mem(mem),
      _tc(tc), _hib(hib)
{
    _traceComp = sys.tracer().registerComponent(name);
}

int
Cpu::addThread(AddressSpace *as, std::function<Task<void>()> builder) // tglint: allow(hot-path-std-function)
{
    Thread t;
    t.as = as;
    t.builder = std::move(builder);
    _threads.push_back(std::move(t));
    return static_cast<int>(_threads.size()) - 1;
}

void
Cpu::start()
{
    if (_current < 0)
        scheduleNext();
}

void
Cpu::restoreScheduler(std::size_t finished_threads, std::uint64_t ops_issued,
                      std::uint64_t switches)
{
    if (!_threads.empty())
        panic("%s: restoreScheduler after threads were added",
              _name.c_str());
    for (std::size_t i = 0; i < finished_threads; ++i) {
        Thread t;
        t.info.started = true;
        t.info.finished = true;
        _threads.push_back(std::move(t));
    }
    _opsIssued = ops_issued;
    _switches = switches;
}

bool
Cpu::allDone() const
{
    for (const auto &t : _threads) {
        if (!t.info.finished)
            return false;
    }
    return true;
}

void
Cpu::enablePreemption()
{
    if (_noPreempt == 0)
        panic("%s: enablePreemption underflow", _name.c_str());
    --_noPreempt;
}

bool
Cpu::quantumExpired() const
{
    return _noPreempt == 0 && now() >= _sliceEnd;
}

void
Cpu::setSwitchHook(std::function<void(int)> fn, Tick extra_cost) // tglint: allow(hot-path-std-function)
{
    _switchHook = std::move(fn);
    _switchHookCost = extra_cost;
}

void
Cpu::runThread(int tid)
{
    Thread &t = _threads[tid];
    _current = tid;
    _sliceEnd = now() + config().cpuQuantum;
    _mmu.setAddressSpace(t.as);
    if (_switchHook)
        _switchHook(tid);

    if (!t.info.started) {
        t.info.started = true;
        t.task = t.builder();
        t.task.start([this, tid] { onThreadDone(tid); });
        return;
    }
    if (t.parked) {
        auto go = std::move(t.parked);
        t.parked = nullptr;
        go();
    }
}

void
Cpu::scheduleNext()
{
    // Round-robin starting after the current thread.
    const int n = static_cast<int>(_threads.size());
    const int from = _current < 0 ? 0 : (_current + 1) % n;
    for (int i = 0; i < n; ++i) {
        const int tid = (from + i) % n;
        Thread &t = _threads[tid];
        if (t.info.finished)
            continue;
        if (!t.info.started || t.parked) {
            if (_current >= 0 && _current != tid) {
                ++_switches;
                _cache.invalidateAll(); // pollution model
                schedule(config().contextSwitch + _switchHookCost,
                         [this, tid] { runThread(tid); });
            } else {
                runThread(tid);
            }
            return;
        }
    }
    _current = -1; // idle (a thread may still be blocked inside an op)
}

void
Cpu::onThreadDone(int tid)
{
    _threads[tid].info.finished = true;
    _current = -1;
    scheduleNext();
}

void
Cpu::killCurrent(const std::string &reason)
{
    if (_current < 0)
        panic("%s: killCurrent with no current thread", _name.c_str());
    Thread &t = _threads[_current];
    t.info.finished = true;
    t.info.killed = true;
    t.info.killReason = reason;
    warn("%s: thread %d killed: %s", _name.c_str(), _current,
         reason.c_str());
    t.task = Task<void>{}; // destroy the suspended coroutine frame
    _current = -1;
    scheduleNext();
}

void
Cpu::issue(const CpuOp &op, Word *result, std::coroutine_handle<> h)
{
    if (_current < 0)
        panic("%s: op issued with no running thread", _name.c_str());
    ++_opsIssued;
    const int tid = _current;
    execute(op, result, [this, tid, h] { onOpComplete(tid, h); });
}

void
Cpu::onOpComplete(int tid, std::coroutine_handle<> h)
{
    Thread &t = _threads[tid];
    if (t.info.finished)
        return; // killed while the op was in flight
    if (tid == _current && !quantumExpired()) {
        h.resume();
        return;
    }
    // Quantum expired (or we lost the CPU): park and let the scheduler
    // pick the next runnable thread (keeping _current so the switch is
    // detected and charged).
    t.parked = [h] { h.resume(); };
    scheduleNext();
}

void
Cpu::execute(const CpuOp &op, Word *result, Fn<void()> done)
{
    const Config &cfg = config();

    switch (op.kind) {
      case CpuOp::Kind::Compute:
        schedule(op.ticks + cfg.cpuInstruction, std::move(done));
        return;

      case CpuOp::Kind::Fence:
        // MEMORY_BARRIER: drain the write buffer, then stall until all
        // outstanding remote operations complete (section 2.3.5).
        schedule(cfg.cpuInstruction + cfg.cpuMemIssue,
                 [this, done = std::move(done)]() mutable {
                     const std::uint64_t traceId =
                         _sys.tracer().beginOp(trace::OpKind::Fence);
                     _sys.tracer().record(traceId, trace::Span::CpuIssue,
                                          now(), _traceComp);
                     waitWriteBufferEmpty(
                         [this, done = std::move(done), traceId]() mutable {
                             _hib.fence(std::move(done), traceId);
                         });
                 });
        return;

      case CpuOp::Kind::Read:
      case CpuOp::Kind::Write:
        break;
    }

    const bool is_write = op.kind == CpuOp::Kind::Write;
    Translation t = _mmu.translate(op.va, is_write);
    const Tick charge = cfg.cpuInstruction + cfg.cpuMemIssue + t.ticks;

    if (!t.ok) {
        // Page fault / protection violation: hand to the OS.
        schedule(charge, [this, op, result, done = std::move(done)]() mutable {
            // The fault handler is a copyable std::function, so the
            // move-only completion rides in a shared_ptr (cold path).
            auto shared = std::make_shared<Fn<void()>>(std::move(done));
            auto retry = [this, op, result, shared] {
                execute(op, result, std::move(*shared));
            };
            auto kill = [this](std::string reason) {
                killCurrent(reason);
            };
            if (_faultHandler)
                _faultHandler(op.va, op.kind == CpuOp::Kind::Write,
                              std::move(retry), std::move(kill));
            else
                killCurrent("unhandled fault");
        });
        return;
    }

    performAccess(op, t, result, charge, std::move(done));
}

void
Cpu::performAccess(const CpuOp &op, const Translation &t, Word *result,
                   Tick charge, Fn<void()> done)
{
    const Config &cfg = config();
    const bool is_write = op.kind == CpuOp::Kind::Write;
    const PAddr pa = t.paddr;
    const PAddr offset = offsetOf(pa);

    // Shadow store: communicate a physical address to the HIB (2.2.4).
    // An uncached store, so it completes into the write buffer.
    if (t.shadow) {
        schedule(charge, [this, pa, op, done = std::move(done)]() mutable {
            bufferStore(pa, op.value, std::move(done));
        });
        return;
    }

    switch (t.pte.mode) {
      case PageMode::Private: {
        const Tick lat = _cache.access(pa, is_write);
        if (is_write) {
            schedule(charge + lat,
                     [this, offset, v = op.value, done = std::move(done)] {
                         _mem.write(offset, v);
                         done();
                     });
        } else {
            schedule(charge + lat,
                     [this, offset, result, done = std::move(done)] {
                         *result = _mem.read(offset);
                         done();
                     });
        }
        return;
      }

      case PageMode::SharedLocal: {
        if (cfg.prototype == Prototype::TelegraphosI) {
            // Shared data lives in HIB SRAM: every access crosses the TC.
            // Accesses drain the write buffer first to preserve the order
            // of launch sequences against buffered argument stores.
            if (is_write) {
                schedule(charge, [this, offset, pa, op,
                                  done = std::move(done)]() mutable {
                    waitWriteBufferEmpty([this, offset, pa, op,
                                          done = std::move(done)]() mutable {
                        _tc.transact(
                            config().cpuUncachedOverhead +
                                config().tcWriteTxn(2),
                            [this, offset, pa, op,
                             done = std::move(done)]() mutable {
                                if (_hib.specialOps().specialMode()) {
                                    // Special mode: the store is an
                                    // argument-passing command (2.2.4).
                                    _hib.shadowStore(pa, op.value,
                                                     std::move(done));
                                    return;
                                }
                                _hib.cpuLocalShmWrite(
                                    offset, op.value,
                                    [this, pa, op,
                                     done = std::move(done)]() mutable {
                                        _hib.localSharedWrite(
                                            pa, op.value, std::move(done));
                                    });
                            });
                    });
                });
            } else {
                schedule(charge, [this, offset, result,
                                  done = std::move(done)]() mutable {
                    waitWriteBufferEmpty([this, offset, result,
                                          done = std::move(done)]() mutable {
                        _tc.transact(
                            config().cpuUncachedOverhead +
                                config().tcReadTxn(),
                            [this, offset, result,
                             done = std::move(done)]() mutable {
                                _hib.cpuLocalShmRead(
                                    offset,
                                    [result,
                                     done = std::move(done)](Word v) mutable {
                                        *result = v;
                                        done();
                                    });
                            });
                    });
                });
            }
        } else {
            // Telegraphos II: shared data in (uncached) main memory.
            // The functional apply happens inside localSharedWrite so
            // protocol-managed pages update at the right moment.
            if (is_write) {
                schedule(charge + cfg.memAccess,
                         [this, pa, op, done = std::move(done)]() mutable {
                             if (_hib.specialOps().specialMode()) {
                                 _hib.shadowStore(pa, op.value,
                                                  std::move(done));
                                 return;
                             }
                             _hib.localSharedWrite(pa, op.value,
                                                   std::move(done));
                         });
            } else {
                schedule(charge + cfg.memAccess,
                         [this, offset, result, done = std::move(done)] {
                             *result = _mem.read(offset);
                             done();
                         });
            }
        }
        return;
      }

      case PageMode::SharedRemote: {
        if (t.pte.counted)
            _hib.countRemoteAccess(pa - (pa % cfg.pageBytes), is_write);
        if (is_write) {
            // Non-blocking: the store completes into the write buffer;
            // the drain engine performs the TC transaction (2.2.1).
            schedule(charge, [this, pa, op, done = std::move(done)]() mutable {
                const std::uint64_t traceId =
                    _sys.tracer().beginOp(trace::OpKind::RemoteWrite);
                _sys.tracer().record(traceId, trace::Span::CpuIssue, now(),
                                     _traceComp);
                bufferStore(pa, op.value, std::move(done), traceId);
            });
        } else {
            // Blocking: drain buffered stores, then hold the read until
            // the reply returns from the remote node.
            schedule(charge, [this, pa, result,
                              done = std::move(done)]() mutable {
                const std::uint64_t traceId =
                    _sys.tracer().beginOp(trace::OpKind::RemoteRead);
                _sys.tracer().record(traceId, trace::Span::CpuIssue, now(),
                                     _traceComp);
                waitWriteBufferEmpty([this, pa, result,
                                      done = std::move(done),
                                      traceId]() mutable {
                    _tc.transact(
                        config().cpuUncachedOverhead + config().tcReadTxn(),
                        [this, pa, result, done = std::move(done),
                         traceId]() mutable {
                            _hib.cpuRemoteRead(
                                pa,
                                [result,
                                 done = std::move(done)](Word v) mutable {
                                    *result = v;
                                    done();
                                },
                                traceId);
                        },
                        traceId);
                });
            });
        }
        return;
      }

      case PageMode::HibControl: {
        if (is_write) {
            schedule(charge, [this, pa, op, done = std::move(done)]() mutable {
                bufferStore(pa, op.value, std::move(done));
            });
        } else {
            schedule(charge, [this, offset, result,
                              done = std::move(done)]() mutable {
                waitWriteBufferEmpty([this, offset, result,
                                      done = std::move(done)]() mutable {
                    _tc.transact(
                        config().cpuUncachedOverhead + config().tcReadTxn(),
                        [this, offset, result,
                         done = std::move(done)]() mutable {
                            _hib.regRead(
                                offset,
                                [result,
                                 done = std::move(done)](Word v) mutable {
                                    *result = v;
                                    done();
                                });
                        });
                });
            });
        }
        return;
      }

      case PageMode::VsmAbsent: {
        // Not present: fault into the VSM layer.
        schedule(charge, [this, op, result, done = std::move(done)]() mutable {
            auto shared = std::make_shared<Fn<void()>>(std::move(done));
            auto retry = [this, op, result, shared] {
                execute(op, result, std::move(*shared));
            };
            auto kill = [this](std::string reason) {
                killCurrent(reason);
            };
            if (_faultHandler)
                _faultHandler(op.va, op.kind == CpuOp::Kind::Write,
                              std::move(retry), std::move(kill));
            else
                killCurrent("VSM access with no handler");
        });
        return;
      }

      case PageMode::Invalid:
        break;
    }
    panic("%s: access to invalid page mode", _name.c_str());
}

// ---------------------------------------------------------------------
// Write buffer
// ---------------------------------------------------------------------

void
Cpu::bufferStore(PAddr pa, Word value, Fn<void()> done,
                 std::uint64_t traceId)
{
    if (_writeBuffer.size() >= config().writeBufferEntries) {
        // Buffer full: the store stalls until the drain engine retires an
        // entry.  (Only one thread runs at a time, so one waiter slot.)
        if (_wbInsertWaiter)
            panic("%s: concurrent write-buffer stalls", _name.c_str());
        _wbInsertWaiter = [this, pa, value, traceId,
                           done = std::move(done)]() mutable {
            bufferStore(pa, value, std::move(done), traceId);
        };
        return;
    }
    _writeBuffer.push_back(BufferedStore{pa, value, traceId});
    schedule(config().writeBufferInsert, std::move(done));
    drainWriteBuffer();
}

void
Cpu::dispatchStore(const BufferedStore &s)
{
    if (isShadow(s.pa)) {
        _hib.shadowStore(stripShadow(s.pa), s.value, [] {});
        return;
    }
    const PAddr offset = offsetOf(s.pa);
    if (regionOf(offset) == Region::HibReg) {
        _hib.regWrite(offset, s.value, [] {});
        return;
    }
    if (_hib.specialOps().specialMode()) {
        // Telegraphos I special mode: stores to shared space communicate
        // addresses instead of being performed (2.2.4).
        _hib.shadowStore(s.pa, s.value, [] {});
        return;
    }
    _hib.cpuRemoteWrite(s.pa, s.value, [] {}, s.traceId);
}

void
Cpu::drainWriteBuffer()
{
    if (_draining)
        return;
    if (_writeBuffer.empty()) {
        if (!_wbEmptyWaiters.empty()) {
            auto waiters = std::move(_wbEmptyWaiters);
            _wbEmptyWaiters.clear();
            for (auto &w : waiters)
                w();
        }
        return;
    }
    _draining = true;
    // HIB back-pressure first (its internal queue may be full), then the
    // TurboChannel transaction retires the entry.
    _hib.waitWriteSpace([this] {
        // Entries retire FIFO and only one drain runs at a time, so the
        // front entry at grant time is the one this transaction carries.
        _tc.transact(
            config().tcWriteTxn(2),
            [this] {
                const BufferedStore s = _writeBuffer.front();
                _writeBuffer.pop_front();
                dispatchStore(s);
                _draining = false;
                if (_wbInsertWaiter) {
                    auto w = std::move(_wbInsertWaiter);
                    _wbInsertWaiter = nullptr;
                    w();
                }
                drainWriteBuffer();
            },
            _writeBuffer.front().traceId);
    });
}

void
Cpu::waitWriteBufferEmpty(Fn<void()> cb)
{
    if (_writeBuffer.empty() && !_draining) {
        cb();
        return;
    }
    _wbEmptyWaiters.push_back(std::move(cb));
}

} // namespace tg::node

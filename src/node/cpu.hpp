/**
 * @file
 * CPU timing model (DEC Alpha 21064-class) driving coroutine programs.
 *
 * Simulated programs are C++20 coroutines that co_await CpuOps.  The Cpu
 * charges per-instruction costs, translates addresses through the Mmu,
 * and routes accesses to the cache/main memory, the TurboChannel + HIB
 * (remote and I/O-space accesses), or the fault handler.  Multiple
 * threads time-share the CPU with a round-robin quantum; preemption can
 * be disabled to model PAL-code sequences (paper section 2.2.4).
 */

#ifndef TELEGRAPHOS_NODE_CPU_HPP
#define TELEGRAPHOS_NODE_CPU_HPP

#include <coroutine>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "node/cache.hpp"
#include "node/main_memory.hpp"
#include "node/mmu.hpp"
#include "node/turbochannel.hpp"
#include "sim/event.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace tg::hib {
class Hib;
}

namespace tg::node {

/** One operation issued by a simulated program. */
struct CpuOp
{
    enum class Kind : std::uint8_t
    {
        Read,    ///< load of one 64-bit word
        Write,   ///< store of one 64-bit word
        Compute, ///< pure computation for `ticks`
        Fence,   ///< MEMORY_BARRIER: drain outstanding remote ops (2.3.5)
    };

    Kind kind = Kind::Compute;
    VAddr va = 0;
    Word value = 0;
    Tick ticks = 0;
};

/** The processor of one workstation. */
class Cpu : public SimObject
{
  public:
    /**
     * Fault handler: (va, is_write, retry, kill).  Installed by the OS;
     * it either repairs the mapping and calls retry, or kills the thread.
     * Cold path (faults trap to software anyway), so std::function is
     * fine here.  tglint: allow(hot-path-std-function)
     */
    using FaultHandler =
        std::function<void(VAddr, bool, std::function<void()>, // tglint: allow(hot-path-std-function)
                           std::function<void(std::string)>)>; // tglint: allow(hot-path-std-function)

    Cpu(System &sys, const std::string &name, NodeId node, Mmu &mmu,
        Cache &cache, MainMemory &mem, TurboChannel &tc, hib::Hib &hib);

    NodeId nodeId() const { return _node; }
    Mmu &mmu() { return _mmu; }

    // ------------------------------------------------------------------
    // Thread management
    // ------------------------------------------------------------------

    /** Outcome of one thread. */
    struct ThreadInfo
    {
        bool started = false;
        bool finished = false;
        bool killed = false;
        std::string killReason;
    };

    /**
     * Register a thread.  @p builder creates the coroutine when the
     * thread is first scheduled (it must bind whatever context it needs).
     */
    int addThread(AddressSpace *as, std::function<Task<void>()> builder); // tglint: allow(hot-path-std-function)

    /** Begin executing registered threads. */
    void start();

    const ThreadInfo &threadInfo(int tid) const { return _threads[tid].info; }
    std::size_t numThreads() const { return _threads.size(); }
    bool allDone() const;
    int currentThread() const { return _current; }

    /** PAL-code support: while disabled, the quantum never preempts. */
    void disablePreemption() { ++_noPreempt; }
    void enablePreemption();

    /**
     * OS context-switch hook (FLASH-style PID maintenance, paper
     * section 2.2.5): @p fn runs whenever a thread is given the CPU;
     * @p extra_cost is added to every context-switch delay (the
     * interrupt-handler work of saving/restoring the NI register).
     */
    void setSwitchHook(std::function<void(int)> fn, Tick extra_cost); // tglint: allow(hot-path-std-function)

    void setFaultHandler(FaultHandler h) { _faultHandler = std::move(h); }

    // ------------------------------------------------------------------
    // Operation issue (called from OpAwaiter)
    // ------------------------------------------------------------------

    /**
     * Execute @p op on behalf of the current thread; resume @p h with the
     * result stored in @p *result when it completes.
     */
    void issue(const CpuOp &op, Word *result, std::coroutine_handle<> h);

    /** Kill the current thread (protection violation etc.). */
    void killCurrent(const std::string &reason);

    // Stats
    std::uint64_t opsIssued() const { return _opsIssued; }
    std::uint64_t contextSwitches() const { return _switches; }

    /**
     * Checkpoint restore (DESIGN.md section 14.5): pad the thread table
     * with @p finished_threads already-finished placeholder slots so
     * post-restore spawns get the same thread ids as in the original
     * run (the round-robin walk and the PID switch hook are keyed by
     * tid), and restore the issue/switch counters.
     */
    void restoreScheduler(std::size_t finished_threads,
                          std::uint64_t ops_issued, std::uint64_t switches);

  private:
    struct Thread
    {
        AddressSpace *as = nullptr;
        std::function<Task<void>()> builder; // tglint: allow(hot-path-std-function)
        Task<void> task;
        ThreadInfo info;
        Fn<void()> parked; ///< pending resume when preempted
    };

    /** Perform @p op; @p done runs at completion (result already stored). */
    void execute(const CpuOp &op, Word *result, Fn<void()> done);
    void performAccess(const CpuOp &op, const Translation &t, Word *result,
                       Tick charge, Fn<void()> done);

    // ------------------------------------------------------------------
    // Uncached-store write buffer (Alpha 21064: 4 entries).  I/O-space
    // stores complete into the buffer; a drain engine issues them over
    // the TurboChannel in order.  Uncached loads and fences drain first.
    // ------------------------------------------------------------------

    struct BufferedStore
    {
        PAddr pa; ///< full physical address (may carry the shadow bit)
        Word value;
        std::uint64_t traceId = 0; ///< lifecycle-tracer op (0 = untraced)
    };

    /** Insert an uncached store (stalls when the buffer is full). */
    void bufferStore(PAddr pa, Word value, Fn<void()> done,
                     std::uint64_t traceId = 0);

    /** Issue buffered stores over the TC, oldest first. */
    void drainWriteBuffer();

    /** Run @p cb once the write buffer has fully drained. */
    void waitWriteBufferEmpty(Fn<void()> cb);

    /** Route one drained store to the right HIB port. */
    void dispatchStore(const BufferedStore &s);

    void onOpComplete(int tid, std::coroutine_handle<> h);
    void onThreadDone(int tid);

    /** Pick and run the next runnable thread (round-robin). */
    void scheduleNext();
    void runThread(int tid);
    bool quantumExpired() const;

    NodeId _node;
    Mmu &_mmu;
    Cache &_cache;
    MainMemory &_mem;
    TurboChannel &_tc;
    hib::Hib &_hib;

    std::deque<BufferedStore> _writeBuffer;
    bool _draining = false;
    Fn<void()> _wbInsertWaiter;
    std::vector<Fn<void()>> _wbEmptyWaiters;

    std::vector<Thread> _threads;
    int _current = -1;
    Tick _sliceEnd = 0;
    int _noPreempt = 0;
    FaultHandler _faultHandler;
    std::function<void(int)> _switchHook; // tglint: allow(hot-path-std-function)
    Tick _switchHookCost = 0;

    std::uint64_t _opsIssued = 0;
    std::uint64_t _switches = 0;
    std::uint16_t _traceComp = 0;
};

/** Awaitable wrapping one CpuOp (used by the api::Ctx helpers). */
struct OpAwaiter
{
    Cpu *cpu;
    CpuOp op;
    Word result = 0;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        cpu->issue(op, &result, h);
    }

    Word await_resume() const { return result; }
};

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_CPU_HPP

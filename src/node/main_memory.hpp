/**
 * @file
 * Sparse backing store for one node's physical memory.
 *
 * Covers both the main-memory region and the Telegraphos shared-memory
 * region (HIB SRAM on prototype I / pinned DRAM on prototype II).  Storage
 * is word-granular and sparse; timing is charged by the accessing
 * component (CPU cache model, HIB service paths), not here.
 */

#ifndef TELEGRAPHOS_NODE_MAIN_MEMORY_HPP
#define TELEGRAPHOS_NODE_MAIN_MEMORY_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "node/address.hpp"
#include "sim/sim_object.hpp"

namespace tg::node {

/** Word-granular sparse physical memory of one workstation. */
class MainMemory : public SimObject
{
  public:
    MainMemory(System &sys, const std::string &name);

    /** Read the 64-bit word at node-local @p offset (must be 8-aligned). */
    Word read(PAddr offset) const;

    /** Write the 64-bit word at node-local @p offset. */
    void write(PAddr offset, Word value);

    /** Copy @p words 64-bit words between node-local offsets. */
    void copy(PAddr dst_offset, PAddr src_offset, std::size_t words);

    /** Bytes of storage actually touched (for stats). */
    std::size_t touchedBytes() const;

    /** All non-zero words as (offset, value) pairs in ascending offset
     *  order (checkpointing, DESIGN.md section 14.5).  Zero words are
     *  omitted: a fresh store reads them back as zero anyway. */
    std::vector<std::pair<PAddr, Word>> dumpWords() const;

  private:
    static constexpr std::size_t kChunkWords = 1024; // 8 KB chunks

    struct Hasher
    {
        std::size_t
        operator()(PAddr a) const
        {
            return std::hash<std::uint64_t>()(a * 0x9e3779b97f4a7c15ULL);
        }
    };

    const std::vector<Word> &chunkFor(PAddr offset) const;
    std::vector<Word> &chunkFor(PAddr offset);

    mutable std::unordered_map<PAddr, std::vector<Word>, Hasher> _chunks;
};

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_MAIN_MEMORY_HPP

/**
 * @file
 * TurboChannel I/O bus model: arbitration and
 * programmed-I/O transaction timing.
 */

#include "node/turbochannel.hpp"

namespace tg::node {

TurboChannel::TurboChannel(System &sys, const std::string &name)
    : SimObject(sys, name)
{
    sys.stats().add(name + ".wait_hist", &_waitHist);
    _traceComp = sys.tracer().registerComponent(name);
}

void
TurboChannel::transact(Tick hold, Fn<void()> done,
                       std::uint64_t traceId)
{
    _queue.push_back(Txn{hold, now(), std::move(done), traceId});
    if (!_busy)
        grantNext();
}

void
TurboChannel::grantNext()
{
    if (_queue.empty()) {
        _busy = false;
        return;
    }
    _busy = true;
    Txn txn = std::move(_queue.front());
    _queue.pop_front();
    _waitTicks += now() - txn.enqueued;
    _busyTicks += txn.hold;
    _waitHist.sample(static_cast<double>(now() - txn.enqueued));
    _sys.tracer().record(txn.traceId, trace::Span::TcGrant, now(),
                         _traceComp, txn.hold);

    schedule(txn.hold, [this, done = std::move(txn.done)] {
        ++_count;
        done();
        grantNext();
    });
}

} // namespace tg::node

/**
 * @file
 * TurboChannel I/O bus model: arbitration and
 * programmed-I/O transaction timing.
 */

#include "node/turbochannel.hpp"

namespace tg::node {

TurboChannel::TurboChannel(System &sys, const std::string &name)
    : SimObject(sys, name)
{
}

void
TurboChannel::transact(Tick hold, std::function<void()> done)
{
    _queue.push_back(Txn{hold, now(), std::move(done)});
    if (!_busy)
        grantNext();
}

void
TurboChannel::grantNext()
{
    if (_queue.empty()) {
        _busy = false;
        return;
    }
    _busy = true;
    Txn txn = std::move(_queue.front());
    _queue.pop_front();
    _waitTicks += now() - txn.enqueued;
    _busyTicks += txn.hold;

    schedule(txn.hold, [this, done = std::move(txn.done)] {
        ++_count;
        done();
        grantNext();
    });
}

} // namespace tg::node

/**
 * @file
 * Simple direct-mapped, write-through data cache for local (private)
 * memory accesses.
 *
 * Telegraphos never interferes with accesses to non-shared data ("its
 * access is routed to the cache ... as usual", paper section 2.2.1), but a
 * cache model is needed so local and remote access costs stand in a
 * realistic ratio.  Shared/remote accesses are uncached, as on the real
 * hardware.
 */

#ifndef TELEGRAPHOS_NODE_CACHE_HPP
#define TELEGRAPHOS_NODE_CACHE_HPP

#include <cstdint>
#include <vector>

#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace tg::node {

/** Direct-mapped write-through cache (tags only; data lives in memory). */
class Cache : public SimObject
{
  public:
    Cache(System &sys, const std::string &name);

    /**
     * Account one access.
     * @param paddr  full physical address
     * @param write  store (write-through: writes always cost a memory
     *               access but allocate the line)
     * @return access latency in ticks
     */
    Tick access(PAddr paddr, bool write);

    /** Invalidate every line of the page containing @p paddr. */
    void invalidatePage(PAddr paddr);

    /** Invalidate everything (context-switch pollution model). */
    void invalidateAll();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    /** Raw tag array (checkpointing, DESIGN.md section 14.5). */
    const std::vector<PAddr> &tags() const { return _tags; }

    /** Restore a captured tag array + hit/miss counters; @p tags must
     *  have the size the configuration implies. */
    void restoreState(const std::vector<PAddr> &tags, std::uint64_t hits,
                      std::uint64_t misses);

  private:
    std::size_t indexOf(PAddr line) const { return line % _tags.size(); }

    std::vector<PAddr> _tags; // line address + 1, 0 = invalid
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace tg::node

#endif // TELEGRAPHOS_NODE_CACHE_HPP

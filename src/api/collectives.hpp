/**
 * @file
 * Communicator: backend-selectable collective operations.
 *
 * A Communicator is a group of nodes with a unified collective API —
 * barrier, broadcast, sum-reduce, all-reduce — executed on one of two
 * backends chosen at cluster construction (ClusterSpec::collectives):
 *
 *  - CollectiveBackend::Host composes the paper's primitives in
 *    software: broadcast through eagerly-mapped pages (section 2.2.7),
 *    reduce through remote fetch&add at a scratch home (2.2.3), barrier
 *    through sense-reversing atomics with the MEMORY_BARRIER embedded
 *    (2.3.5).  The CPU drives every step and polls for completion.
 *
 *  - CollectiveBackend::Nic offloads the whole collective to the HIB's
 *    collective engine (hib::CollEngine, DESIGN.md section 15): the host
 *    writes one descriptor into its Telegraphos context and blocks on a
 *    single register read while the combine/fan-out tree runs
 *    NIC-to-NIC.
 *
 * Both backends implement identical semantics — same values delivered,
 * same completion rules — so they are differentially testable; only the
 * cost model differs.  Every operation yields Result<...>: a wire
 * failure that touched the collective (a lost contribution, release or
 * payload) surfaces as OpError::LinkFailure on the members it affected,
 * never as silently wrong data.
 *
 * Communicators are built exclusively through Cluster::communicator();
 * there is no public constructor.
 */

#ifndef TELEGRAPHOS_API_COLLECTIVES_HPP
#define TELEGRAPHOS_API_COLLECTIVES_HPP

#include <map>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/result.hpp"
#include "api/segment.hpp"
#include "hib/coll_engine.hpp"
#include "sim/trace.hpp"

namespace tg {

/**
 * Outcome of a rooted reduction.  The sum only materializes at the
 * root; atRoot tells the caller whether value is meaningful (the old
 * API returned a bare Word where non-roots read a bogus 0).
 */
struct ReduceOut
{
    bool atRoot = false; ///< this member is the root
    Word value = 0;      ///< the sum (valid only when atRoot)
};

/** A group of nodes with a backend-selectable collective API. */
class Communicator
{
  public:
    /** Construction passkey: only Cluster::communicator() can mint one,
     *  making that factory the single construction path. */
    class BuildKey
    {
        friend class Cluster;
        BuildKey() = default;
    };

    Communicator(BuildKey, Cluster &cluster, const std::string &name,
                 std::vector<NodeId> members, CollectiveBackend backend,
                 std::uint32_t group_id, std::size_t max_words);

    std::size_t size() const { return _members.size(); }
    const std::vector<NodeId> &members() const { return _members; }
    CollectiveBackend backend() const { return _backend; }

    /** Block until every member arrived (reusable). */
    Task<Result<void>> barrier(Ctx &ctx);

    /**
     * Broadcast @p io from @p root: the root sends io's contents, every
     * member (root included) returns with io holding exactly the root's
     * words.
     */
    Task<Result<void>> broadcast(Ctx &ctx, std::vector<Word> &io,
                                 NodeId root);

    /** Sum-reduce @p contribution at @p root.  Only the root's
     *  ReduceOut carries the sum (atRoot distinguishes it). */
    Task<Result<ReduceOut>> reduceSum(Ctx &ctx, Word contribution,
                                      NodeId root);

    /** Sum-reduce and distribute: every member receives the sum. */
    Task<Result<Word>> allReduceSum(Ctx &ctx, Word contribution);

  private:
    static constexpr std::size_t kRounds = 4; ///< host reduce rotation

    std::size_t rankOf(NodeId n) const;

    /** Host-backend completion-poll gap, proportional to group size so
     *  large groups don't bury the scratch home under poll reads. */
    Tick pollGap() const;

    /** Faults visible to @p ctx's member so far: the node's wire-failure
     *  count plus (NIC backend) its engine's error-completion count. */
    std::uint64_t faultsNow(Ctx &ctx) const;
    OpError errorSince(Ctx &ctx, std::uint64_t before) const;

    /** Host-backend lifecycle op (the NIC backend's ops are opened by
     *  the engine itself): begin + CpuIssue record. */
    std::uint64_t hostTraceBegin(trace::OpKind kind);
    void hostTraceEnd(std::uint64_t id);

    // Host broadcast segment layout (per member m, homed at m,
    // eager-mapped to all other members):
    //   word 0:            generation counter
    //   word 1:            payload word count
    //   words 8..8+max:    payload
    VAddr bcastGenVa(std::size_t rank) const
    {
        return _bcast[rank]->word(0);
    }
    VAddr bcastCountVa(std::size_t rank) const
    {
        return _bcast[rank]->word(1);
    }
    VAddr bcastWordVa(std::size_t rank, std::size_t w) const
    {
        return _bcast[rank]->word(8 + w);
    }

    // Host reduce scratch (homed at members[0]), rotated over kRounds
    // slots: slot s accumulator at word(s), arrivals at word(kRounds+s).
    VAddr accVa(std::size_t slot) const { return _scratch->word(slot); }
    VAddr arrVa(std::size_t slot) const
    {
        return _scratch->word(kRounds + slot);
    }
    // Host barrier words: count at word(2*kRounds), generation at +1.
    VAddr barCountVa() const { return _scratch->word(2 * kRounds); }
    VAddr barGenVa() const { return _scratch->word(2 * kRounds + 1); }

    Task<Result<void>> hostBroadcast(Ctx &ctx, std::vector<Word> &io,
                                     NodeId root, std::uint64_t before);

    Cluster &_cluster;
    std::vector<NodeId> _members;
    CollectiveBackend _backend;
    std::uint32_t _groupId;
    std::size_t _maxWords;
    std::uint16_t _traceComp = 0;

    // Host-backend state (empty/null on the NIC backend).
    std::vector<Segment *> _bcast; ///< one per member (owner = member)
    Segment *_scratch = nullptr;

    /** Host-side per-node cursors (each node's private progress). */
    std::map<NodeId, std::vector<std::uint64_t>> _bcastSeen;
    std::map<NodeId, std::uint64_t> _reduceRound;
};

} // namespace tg

#endif // TELEGRAPHOS_API_COLLECTIVES_HPP

/**
 * @file
 * Collective operations over Telegraphos primitives.
 *
 * The paper's mechanisms compose directly into the collectives parallel
 * programs need:
 *
 *  - broadcast: the root's data page is eagerly mapped out to every
 *    member (section 2.2.7), so a broadcast is a few local stores plus
 *    one fence — members read their local receive copies;
 *  - reduce: members combine contributions with remote fetch&add at the
 *    root (section 2.2.3);
 *  - barrier: sense-reversing, over remote atomics (embedding the
 *    MEMORY_BARRIER per section 2.3.5);
 *  - all-reduce: reduce followed by broadcast of the result.
 */

#ifndef TELEGRAPHOS_API_COLLECTIVES_HPP
#define TELEGRAPHOS_API_COLLECTIVES_HPP

#include <map>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {

/** A group of nodes with preallocated collective scratch memory. */
class Communicator
{
  public:
    /**
     * Build a communicator over @p members.  Allocates, per member, a
     * broadcast segment eagerly mapped to all other members, plus a
     * reduce/barrier scratch segment homed on the first member.
     * @param max_words widest broadcast payload supported
     */
    Communicator(Cluster &cluster, const std::string &name,
                 std::vector<NodeId> members, std::size_t max_words = 64);

    std::size_t size() const { return _members.size(); }
    const std::vector<NodeId> &members() const { return _members; }

    /** Block until every member arrived (reusable). */
    Task<void> barrier(Ctx &ctx);

    /**
     * Broadcast @p io from @p root: the root sends io's contents, every
     * member (root included) returns with io holding them.
     */
    Task<void> broadcast(Ctx &ctx, std::vector<Word> &io, NodeId root);

    /** Sum-reduce @p contribution at @p root; only the root's return
     *  value holds the sum (others return 0). */
    Task<Word> reduceSum(Ctx &ctx, Word contribution, NodeId root);

    /** Sum-reduce and distribute: every member returns the sum. */
    Task<Word> allReduceSum(Ctx &ctx, Word contribution);

  private:
    static constexpr std::size_t kRounds = 4; ///< rotation depth

    std::size_t rankOf(NodeId n) const;

    // Broadcast segment layout (per member m, homed at m, eager-mapped
    // to all other members):
    //   word 0:            generation counter
    //   words 8..8+max:    payload
    VAddr bcastGenVa(std::size_t rank) const
    {
        return _bcast[rank]->word(0);
    }
    VAddr bcastWordVa(std::size_t rank, std::size_t w) const
    {
        return _bcast[rank]->word(8 + w);
    }

    // Reduce scratch (homed at members[0]), rotated over kRounds slots:
    //   slot s accumulator: word(s); slot s arrivals: word(kRounds + s)
    VAddr accVa(std::size_t slot) const { return _scratch->word(slot); }
    VAddr arrVa(std::size_t slot) const
    {
        return _scratch->word(kRounds + slot);
    }
    // Barrier words: count at word(2*kRounds), generation at +1.
    VAddr barCountVa() const { return _scratch->word(2 * kRounds); }
    VAddr barGenVa() const { return _scratch->word(2 * kRounds + 1); }

    Cluster &_cluster;
    std::vector<NodeId> _members;
    std::size_t _maxWords;
    std::vector<Segment *> _bcast; ///< one per member (owner = member)
    Segment *_scratch;

    /** Host-side per-node cursors (each node's private progress). */
    std::map<NodeId, std::vector<std::uint64_t>> _bcastSeen;
    std::map<NodeId, std::uint64_t> _reduceRound;
};

} // namespace tg

#endif // TELEGRAPHOS_API_COLLECTIVES_HPP

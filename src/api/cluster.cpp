/**
 * @file
 * Cluster implementation: builds the machine room (nodes,
 * HIBs, network, directory, protocols), spawns programs and runs the
 * simulation to completion.
 */

#include "api/cluster.hpp"

#include "api/collectives.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "coherence/galactica_ring.hpp"
#include "coherence/invalidate.hpp"
#include "coherence/naive_multicast.hpp"
#include "coherence/owner_counter.hpp"
#include "node/address.hpp"

namespace tg {

using coherence::PageEntry;
using coherence::ProtocolKind;
using node::PageMode;
using node::Pte;

ClusterSpec
ClusterSpec::star(std::size_t nodes)
{
    ClusterSpec s;
    s._topology.kind = net::TopologyKind::Star;
    s._topology.nodes = nodes;
    return s;
}

ClusterSpec
ClusterSpec::chain(std::size_t nodes, std::size_t perSwitch)
{
    ClusterSpec s;
    s._topology.kind = net::TopologyKind::Chain;
    s._topology.nodes = nodes;
    s._topology.nodesPerSwitch = perSwitch;
    return s;
}

ClusterSpec
ClusterSpec::ring(std::size_t nodes, std::size_t perSwitch)
{
    ClusterSpec s;
    s._topology.kind = net::TopologyKind::Ring;
    s._topology.nodes = nodes;
    s._topology.nodesPerSwitch = perSwitch;
    return s;
}

ClusterSpec
ClusterSpec::torus(std::size_t x, std::size_t y, std::size_t perSwitch)
{
    ClusterSpec s;
    s._topology.kind = net::TopologyKind::Torus2D;
    s._topology.torusX = x;
    s._topology.torusY = y;
    s._topology.nodesPerSwitch = perSwitch;
    s._topology.nodes = x * y * perSwitch;
    return s;
}

ClusterSpec
ClusterSpec::torus3d(std::size_t x, std::size_t y, std::size_t z,
                     std::size_t perSwitch)
{
    ClusterSpec s;
    s._topology.kind = net::TopologyKind::Torus3D;
    s._topology.torusX = x;
    s._topology.torusY = y;
    s._topology.torusZ = z;
    s._topology.nodesPerSwitch = perSwitch;
    s._topology.nodes = x * y * z * perSwitch;
    return s;
}

ClusterSpec
ClusterSpec::fatTree(std::size_t nodes, std::size_t perSwitch,
                     std::size_t spines)
{
    ClusterSpec s;
    s._topology.kind = net::TopologyKind::FatTree;
    s._topology.nodes = nodes;
    s._topology.nodesPerSwitch = perSwitch;
    s._topology.spines = spines == 0 ? perSwitch : spines;
    return s;
}

ClusterSpec
ClusterSpec::fromTopology(const net::TopologySpec &t)
{
    ClusterSpec s;
    s._topology = t;
    return s;
}

ClusterSpec
ClusterSpec::forKind(net::TopologyKind kind, std::size_t nodes,
                     std::size_t perSwitch)
{
    switch (kind) {
      case net::TopologyKind::Star:
        return star(nodes);
      case net::TopologyKind::Chain:
        return chain(nodes, perSwitch);
      case net::TopologyKind::Ring:
        return ring(nodes, perSwitch);
      case net::TopologyKind::Torus2D: {
        const std::size_t nsw =
            perSwitch ? (nodes + perSwitch - 1) / perSwitch : 1;
        std::size_t gx = 1;
        for (std::size_t d = 1; d * d <= nsw; ++d)
            if (nsw % d == 0)
                gx = d;
        return torus(gx, nsw / gx, perSwitch);
      }
      case net::TopologyKind::Torus3D: {
        // Most-cubical switch grid for nodes/perSwitch switches: the
        // largest factor pair (a, b*c) with b*c split most-squarely in
        // turn.  Rounds nodes up to fill the grid.
        const std::size_t nsw =
            perSwitch ? (nodes + perSwitch - 1) / perSwitch : 1;
        std::size_t gz = 1;
        for (std::size_t d = 1; d * d * d <= nsw; ++d)
            if (nsw % d == 0)
                gz = d;
        const std::size_t rest = nsw / gz;
        std::size_t gy = 1;
        for (std::size_t d = 1; d * d <= rest; ++d)
            if (rest % d == 0)
                gy = d;
        return torus3d(rest / gy, gy, gz, perSwitch);
      }
      case net::TopologyKind::FatTree:
        return fatTree(nodes, perSwitch);
    }
    panic("forKind: unknown topology kind %d", int(kind));
}

ClusterSpec &
ClusterSpec::protocol(coherence::ProtocolKind kind)
{
    defaultProtocol = kind;
    return *this;
}

ClusterSpec &
ClusterSpec::collectives(CollectiveBackend b)
{
    defaultCollectives = b;
    return *this;
}

ClusterSpec &
ClusterSpec::trace(bool on)
{
    config.tracePackets = on;
    return *this;
}

ClusterSpec &
ClusterSpec::traceSample(std::uint32_t shift)
{
    config.traceSampleShift = shift;
    return *this;
}

ClusterSpec &
ClusterSpec::seed(std::uint64_t s)
{
    config.seed = s;
    return *this;
}

ClusterSpec &
ClusterSpec::prototype(Prototype p)
{
    config.prototype = p;
    return *this;
}

ClusterSpec &
ClusterSpec::faults(const FaultSpec &f)
{
    config.fault = f;
    return *this;
}

ClusterSpec &
ClusterSpec::shards(std::uint32_t n)
{
    config.shards = n;
    return *this;
}

Expected<std::unique_ptr<Cluster>, ConfigError>
Cluster::build(const ClusterSpec &spec)
{
    if (auto valid = spec.topology().validate(); !valid)
        return valid.error();
    return std::make_unique<Cluster>(spec);
}

Cluster::Cluster(const ClusterSpec &spec)
    : _defaultProtocol(spec.defaultProtocol),
      _collBackend(spec.defaultCollectives)
{
    _sys = std::make_unique<System>(spec.config);
    _dir = std::make_unique<coherence::Directory>(*_sys, "dir");
    _net = std::make_unique<net::Network>(*_sys, "net", spec.topology());

    const std::size_t n = spec.topology().nodes;
    _nextCtxIdx.assign(n, 0);
    _tidCtx.assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
        auto ws = std::make_unique<node::Workstation>(
            *_sys, "node" + std::to_string(i), static_cast<NodeId>(i));
        ws->hib().setDirectory(_dir.get());
        _net->attach(static_cast<NodeId>(i), ws->hib());
        auto os = std::make_unique<os::OsKernel>(
            *_sys, "os" + std::to_string(i), *ws);
        os->install();
        _nodes.push_back(std::move(ws));
        _kernels.push_back(std::move(os));
    }

    _protocols.push_back(
        std::make_unique<coherence::NaiveMulticastProtocol>(*_sys, *this));
    _protocols.push_back(
        std::make_unique<coherence::OwnerCounterProtocol>(*_sys, *this));
    _protocols.push_back(
        std::make_unique<coherence::GalacticaRingProtocol>(*_sys, *this));
    _protocols.push_back(
        std::make_unique<coherence::InvalidateProtocol>(*_sys, *this));

    if (spec.config.fault.enabled()) {
        _net->setFailureHandler(
            [this](net::Packet &&pkt) { wireFailure(std::move(pkt)); });
    }
}

void
Cluster::wireFailure(net::Packet &&pkt)
{
    // Who loses an expected completion when this packet vanishes?  For
    // replies and acks it is the node still waiting for them (dst); for
    // coherence updates it is the write's origin (whose outstanding
    // counter tracks the reflected copies); for requests it is the
    // sender.
    NodeId victim;
    switch (pkt.type) {
      case net::PacketType::WriteAck:
      case net::PacketType::UpdateAck:
      case net::PacketType::ReadReply:
      case net::PacketType::AtomicReply:
      case net::PacketType::CopyData:
      case net::PacketType::InvAck:
      case net::PacketType::PageData:
      // Collective tree traffic: the receiving NIC synthesizes the lost
      // arrival/release so every member still completes (coll_engine).
      case net::PacketType::CollUp:
      case net::PacketType::CollDown:
        victim = pkt.dst;
        break;
      case net::PacketType::Update:
      case net::PacketType::RingUpdate:
      case net::PacketType::WriteOwner:
        victim = pkt.origin;
        break;
      default:
        victim = pkt.src;
        break;
    }

    for (auto &ctx : _ctxs) {
        if (ctx->self() == victim)
            ctx->noteWireFailure();
    }
    _kernels[victim]->onWireFailure(pkt);
    hibOf(victim).onWireFailure(pkt);
}

Cluster::~Cluster() = default;

coherence::Protocol &
Cluster::protocol(ProtocolKind kind)
{
    for (auto &p : _protocols) {
        if (p->kind() == kind)
            return *p;
    }
    fatal("no protocol instance for kind %s", protocolKindName(kind));
}

VAddr
Cluster::allocVa(std::size_t pages)
{
    const VAddr va = _vaNext;
    _vaNext += VAddr(pages) * config().pageBytes;
    return va;
}

Segment &
Cluster::allocShared(const std::string &name, std::size_t bytes,
                     NodeId owner)
{
    const std::size_t page_bytes = config().pageBytes;
    const std::size_t pages = (bytes + page_bytes - 1) / page_bytes;
    const VAddr va = allocVa(pages);
    const PAddr home = node(owner).allocShmFrames(pages);

    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        Pte pte;
        pte.frame = home;
        pte.mode = (static_cast<NodeId>(i) == owner) ? PageMode::SharedLocal
                                                     : PageMode::SharedRemote;
        _nodes[i]->defaultAddressSpace().mapRange(va, pages, pte);
    }

    _segments.push_back(
        std::make_unique<Segment>(*this, name, va, pages, owner, home));
    _segments.back()->setReplicationKind(_defaultProtocol);
    return *_segments.back();
}

VAddr
Cluster::allocPrivate(NodeId n, std::size_t bytes)
{
    const std::size_t page_bytes = config().pageBytes;
    const std::size_t pages = (bytes + page_bytes - 1) / page_bytes;
    const VAddr va = allocVa(pages);
    Pte pte;
    pte.frame = node(n).allocMainFrames(pages);
    pte.mode = PageMode::Private;
    node(n).defaultAddressSpace().mapRange(va, pages, pte);
    return va;
}

Communicator &
Cluster::communicator(const std::string &name, std::vector<NodeId> members,
                      std::size_t max_words)
{
    _comms.push_back(std::make_unique<Communicator>(
        Communicator::BuildKey{}, *this, name, std::move(members),
        _collBackend, _nextGroupId++, max_words));
    return *_comms.back();
}

Segment *
Cluster::segmentOfHome(PAddr home_page)
{
    for (auto &s : _segments) {
        if (home_page >= s->homeFrame() &&
            home_page < s->homeFrame() + s->pages() * config().pageBytes)
            return s.get();
    }
    return nullptr;
}

void
Cluster::onCopyInvalidated(PageEntry &e, NodeId n, PAddr target_frame)
{
    Segment *seg = segmentOfHome(e.home);
    if (!seg)
        return;
    const std::size_t page =
        static_cast<std::size_t>((e.home - seg->homeFrame()) /
                                 config().pageBytes);
    const VAddr va = seg->base() + page * config().pageBytes;
    node::AddressSpace &as = node(n).defaultAddressSpace();
    if (Pte *pte = as.find(va)) {
        pte->frame = target_frame;
        pte->mode = PageMode::SharedRemote;
    }
    node(n).mmu().flushPage(as.asid(), va);
}

void
Cluster::replicatePageLive(NodeId n, PAddr home_page,
                           std::function<void()> done)
{
    Segment *seg = segmentOfHome(home_page);
    if (!seg) {
        warn("replicatePageLive: no segment for page %llx",
             (unsigned long long)home_page);
        if (done)
            done();
        return;
    }

    PageEntry *e = _dir->byHome(home_page);
    if (!e) {
        coherence::Protocol &proto = protocol(seg->replicationKind());
        e = &_dir->create(home_page, seg->owner(), seg->replicationKind(),
                          &proto);
        proto.onCopyAdded(*e, seg->owner());
    }
    if (e->hasCopy(n)) {
        if (done)
            done();
        return;
    }

    const PAddr local = node(n).allocShmFrames(1);
    // Register the copy first so updates flow to it while it fills.
    _dir->addCopy(*e, n, local);
    e->protocol->onCopyAdded(*e, n);

    // OS work: fault-level bookkeeping, then a HIB bulk copy, then the
    // remap + TLB flush.
    const Tick os_cost = config().osTrap + config().osPageFault;
    _sys->events().schedule(os_cost, [this, n, seg, home_page, local,
                                      done = std::move(done)] {
        hibOf(n).startCopy(home_page, local, config().pageBytes,
                           [this, n, seg, home_page, local, done] {
                               const std::size_t page =
                                   static_cast<std::size_t>(
                                       (home_page - seg->homeFrame()) /
                                       config().pageBytes);
                               const VAddr va = seg->base() +
                                                page * config().pageBytes;
                               node::AddressSpace &as =
                                   node(n).defaultAddressSpace();
                               if (Pte *pte = as.find(va)) {
                                   pte->frame = local;
                                   pte->mode = PageMode::SharedLocal;
                               }
                               node(n).mmu().flushPage(as.asid(), va);
                               if (done)
                                   done();
                           });
    });
}

int
Cluster::spawn(NodeId n, Body body)
{
    return spawnIn(n, node(n).defaultAddressSpace(), std::move(body));
}

int
Cluster::spawnIsolated(NodeId n, Body body)
{
    return spawnIn(n, node(n).newAddressSpace(), std::move(body));
}

int
Cluster::spawnIn(NodeId n, node::AddressSpace &as, Body body)
{
    node::Workstation &ws = node(n);
    const std::uint32_t idx = _nextCtxIdx[n]++;
    if (idx >= config().hibContexts)
        fatal("node %u out of Telegraphos contexts", unsigned(n));
    const std::uint32_t key =
        static_cast<std::uint32_t>(_sys->rng().next() | 1);
    ws.hib().specialOps().assignKey(idx, key);

    // Map this thread's Telegraphos context page (the mapping is the
    // protection: other processes' contexts stay unmapped).
    const VAddr ctx_va = allocVa(1);
    Pte ctx_pte;
    ctx_pte.frame =
        node::makePAddr(n, hib::SpecialOpsUnit::contextRegBase(idx));
    ctx_pte.mode = PageMode::HibControl;
    as.map(ctx_va, ctx_pte);

    // Map the Telegraphos I special-register page (PAL-mediated access).
    const VAddr special_va = allocVa(1);
    Pte sp_pte;
    sp_pte.frame = node::makePAddr(n, node::kHibRegBase);
    sp_pte.mode = PageMode::HibControl;
    as.map(special_va, sp_pte);

    auto ctx = std::make_unique<Ctx>(*this, n, ws.cpu(), as, idx, key,
                                     ctx_va, special_va,
                                     _sys->rng().fork());
    Ctx *raw = ctx.get();
    _ctxs.push_back(std::move(ctx));
    const int tid = ws.cpu().addThread(&as, [raw, body = std::move(body)] {
        return body(*raw);
    });
    if (std::size_t(tid) >= _tidCtx[n].size())
        _tidCtx[n].resize(tid + 1, 0);
    _tidCtx[n][tid] = idx;
    return tid;
}

void
Cluster::enableFlashOsSupport()
{
    // Two uncached device-register accesses per switch (save old PID,
    // write new one) inside the interrupt handler.
    const Tick extra = 2 * config().tcWriteTxn(2);
    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        _nodes[n]->cpu().setSwitchHook(
            [this, n](int tid) {
                const auto &map = _tidCtx[n];
                if (std::size_t(tid) < map.size())
                    hibOf(NodeId(n)).specialOps().setPid(map[tid]);
            },
            extra);
    }
}

Tick
Cluster::run(Tick limit)
{
    // Kick every idle CPU: programs may have been spawned after an
    // earlier run() (start() is a no-op while a thread is running).
    _started = true;
    for (auto &ws : _nodes)
        ws->cpu().start();
    while (!allDone()) {
        if (_sys->events().empty()) {
            warn("cluster: event queue drained with programs unfinished "
                 "(deadlock?)");
            break;
        }
        if (_sys->now() >= limit) {
            warn("cluster: run limit reached at %llu ticks",
                 (unsigned long long)_sys->now());
            break;
        }
        _sys->events().run(100'000);
    }
    return _sys->now();
}

bool
Cluster::allDone() const
{
    for (const auto &ws : _nodes) {
        if (!ws->cpu().allDone())
            return false;
    }
    return true;
}

bool
Cluster::anyKilled() const
{
    for (const auto &ws : _nodes) {
        for (std::size_t t = 0; t < ws->cpu().numThreads(); ++t) {
            if (ws->cpu().threadInfo(static_cast<int>(t)).killed)
                return true;
        }
    }
    return false;
}

void
Cluster::observeWrites(
    std::function<void(const coherence::ApplyEvent &)> cb)
{
    _dir->observe(std::move(cb));
}

void
Cluster::statsReport(std::ostream &os)
{
    os << "=== cluster statistics @ " << _sys->now() << " ns ("
       << toUs(_sys->now()) << " us) ===\n";
    os << "topology: " << _net->spec().describe() << "\n";
    os << "events executed: " << _sys->events().executed() << "\n";
    os << "switch packets forwarded: " << _net->switchForwarded() << "\n";
    // Unconditional: the reliability layer runs on every link, so these
    // counters must be visible even when the fault model is inert —
    // a fault-free run that retransmits would otherwise report nothing.
    os << "net.crc_errors: " << _net->corruptions() << "\n";
    os << "net.retransmissions: " << _net->retransmissions() << "\n";
    os << "net.dup_discards: " << _net->duplicateDiscards() << "\n";
    os << "net.wire_failures: " << _net->wireFailures() << "\n";
    if (_net->rerouter()) {
        os << "net.routing_epochs: " << _net->routingEpochs() << "\n";
        os << "net.reroutes_applied: " << _net->reroutesApplied() << "\n";
        os << "net.dead_trunks_now: " << _net->rerouter()->deadTrunksNow()
           << "\n";
    }

    for (auto &ws : _nodes) {
        const auto &cpu = ws->cpu();
        const auto &cache = ws->cache();
        const auto &mmu = ws->mmu();
        const auto &tc = ws->tc();
        auto &hib = ws->hib();
        os << "--- " << ws->name() << " ---\n";
        os << "  cpu.ops_issued            " << cpu.opsIssued() << "\n";
        os << "  cpu.context_switches      " << cpu.contextSwitches()
           << "\n";
        const double cache_total =
            double(cache.hits()) + double(cache.misses());
        os << "  cache.hit_rate            "
           << (cache_total > 0 ? double(cache.hits()) / cache_total : 0)
           << "\n";
        const double tlb_total = double(mmu.hits()) + double(mmu.misses());
        os << "  tlb.hit_rate              "
           << (tlb_total > 0 ? double(mmu.hits()) / tlb_total : 0) << "\n";
        os << "  tc.transactions           " << tc.transactions() << "\n";
        os << "  tc.busy_ticks             " << tc.busyTicks() << "\n";
        os << "  tc.wait_ticks             " << tc.waitTicks() << "\n";
        os << "  hib.packets_handled       " << hib.packetsHandled()
           << "\n";
        os << "  hib.outstanding.peak      " << hib.outstanding().peak()
           << "\n";
        os << "  hib.outstanding.total     " << hib.outstanding().total()
           << "\n";
        os << "  hib.atomics_executed      " << hib.atomicUnit().executed()
           << "\n";
        os << "  hib.page_counter.accesses "
           << hib.pageCounters().accesses() << "\n";
        os << "  hib.page_counter.alarms   " << hib.pageCounters().alarms()
           << "\n";
        os << "  hib.counter_cache.stalls  "
           << hib.counterCache().stallEvents() << "\n";
        os << "  hib.counter_cache.peak    " << hib.counterCache().peakUsed()
           << "\n";
        os << "  hib.key_violations        "
           << hib.specialOps().keyViolations() << "\n";
        const auto &coll = hib.collectives();
        os << "  hib.coll_barriers         " << coll.barriers() << "\n";
        os << "  hib.coll_bcast_msgs       " << coll.bcastMsgs() << "\n";
        os << "  hib.coll_combines         " << coll.combines() << "\n";
        os << "  hib.coll_desc_peak        " << coll.descPeak() << "\n";
        os << "  hib.coll_errors           " << coll.errors() << "\n";
        os << "  hib.wire_failures         " << hib.wireFailures() << "\n";
        os << "  hib.outstanding.lost      " << hib.outstanding().lost()
           << "\n";
        os << "  mem.touched_bytes         " << ws->mem().touchedBytes()
           << "\n";
    }
}

} // namespace tg

/**
 * @file
 * Message-passing layer built on remote writes (send/receive
 * mailboxes).
 */

#include "api/msg.hpp"

namespace tg {

namespace {
/** Spin pause while polling local words. */
constexpr Tick kPoll = 400;
} // namespace

MsgChannel::MsgChannel(Cluster &cluster, const std::string &name,
                       NodeId sender, NodeId receiver, std::size_t slots,
                       std::size_t slot_words)
    : _sender(sender), _receiver(receiver), _slots(slots),
      _slotWords(slot_words)
{
    if (slots == 0 || slot_words == 0)
        fatal("MsgChannel %s: slots and slot_words must be positive",
              name.c_str());
    const std::size_t data_bytes = (8 + slots * slot_words) * 8;
    _data = &cluster.allocShared(name + ".data", data_bytes, receiver);
    _credit = &cluster.allocShared(name + ".credit", 64, sender);
}

Task<void>
MsgChannel::send(Ctx &ctx, std::vector<Word> payload)
{
    if (ctx.self() != _sender)
        fatal("MsgChannel: send from node %u, channel sender is %u",
              unsigned(ctx.self()), unsigned(_sender));
    payload.resize(_slotWords, 0);

    // Flow control: wait until the ring has room.  The credit (head)
    // word is homed here, so the poll is a local access.
    while (true) {
        const Word head = co_await ctx.read(headVa());
        if (_sendCursor - head < _slots)
            break;
        co_await ctx.compute(kPoll);
    }

    // Payload: non-blocking remote writes into the receiver's slot.
    for (std::size_t w = 0; w < _slotWords; ++w)
        co_await ctx.write(slotVa(_sendCursor, w), payload[w]);
    // Publication: payload must be globally performed before the tail
    // moves (section 2.3.5).
    co_await ctx.fence();
    ++_sendCursor;
    co_await ctx.write(tailVa(), _sendCursor);
    co_await ctx.fence();
    ++_sent;
}

Task<std::vector<Word>>
MsgChannel::recv(Ctx &ctx)
{
    if (ctx.self() != _receiver)
        fatal("MsgChannel: recv on node %u, channel receiver is %u",
              unsigned(ctx.self()), unsigned(_receiver));

    // Poll the local tail until a message is published.
    while (co_await ctx.read(tailVa()) <= _recvCursor)
        co_await ctx.compute(kPoll);

    std::vector<Word> out(_slotWords);
    for (std::size_t w = 0; w < _slotWords; ++w)
        out[w] = co_await ctx.read(slotVa(_recvCursor, w));
    ++_recvCursor;
    ++_received;
    // Return the credit: one remote write to the sender's head mirror.
    co_await ctx.write(headVa(), _recvCursor);
    co_return out;
}

Task<Word>
MsgChannel::pending(Ctx &ctx)
{
    const Word tail = co_await ctx.read(tailVa());
    co_return tail - _recvCursor;
}

} // namespace tg

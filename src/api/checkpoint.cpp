/**
 * @file
 * Cluster checkpoint/restore (DESIGN.md section 14.5).
 *
 * A checkpoint captures the *semantic* state of a quiescent cluster —
 * everything that influences the future schedule, packet contents or
 * trace hash — as a self-contained text blob (schema tg-ckpt-v1):
 *
 *  - simulation clock, event sequence counter, executed-event count
 *  - the determinism trace hash (value + words mixed)
 *  - the RNG stream state (spawn keys and Ctx forks continue exactly)
 *  - the packet-conservation ledger
 *  - the tracer's operation-id counter (sampling decisions are a pure
 *    function of the id, so sampled subsets stay aligned)
 *  - per node: memory words, cache tags, TLB contents, page tables,
 *    allocator cursors, scheduler shape and HIB ticket/seq/page-counter
 *    state
 *  - the shared-page directory (owner, copies, rings)
 *
 * Deliberately NOT captured: in-flight hardware state (queues, wires,
 * pending replies — quiescence guarantees there is none), coroutine
 * frames (finished programs have none; restored clusters spawn their
 * next programs fresh), and cumulative statistics outside the listed
 * counters.  The restore contract is: rebuild the cluster from the same
 * spec, replay the same setup calls (allocShared/allocPrivate/segment
 * replication), restore, then continue the workload — the trace hash
 * evolves bit-identically to a run that never checkpointed.
 */

#include "api/cluster.hpp"

#include <sstream>

#include "api/segment.hpp"
#include "hib/hib.hpp"
#include "net/packet.hpp"

namespace tg {

namespace {

constexpr const char *kMagic = "tg-ckpt-v1";

/** Token-stream reader: whitespace-separated tags and unsigned values,
 *  fatal() on any shape mismatch (a checkpoint is machine-written, so a
 *  parse failure means corruption or a schema change, not user input). */
class Reader
{
  public:
    explicit Reader(const std::string &blob) : _in(blob) {}

    void
    expect(const char *tag)
    {
        std::string got;
        if (!(_in >> got) || got != tag)
            fatal("checkpoint: expected '%s', got '%s'", tag, got.c_str());
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (!(_in >> v))
            fatal("checkpoint: truncated blob (expected integer)");
        return v;
    }

  private:
    std::istringstream _in;
};

void
writePte(std::ostream &os, VAddr vpn, const node::Pte &pte)
{
    os << vpn << " " << pte.frame << " " << unsigned(pte.mode) << " "
       << unsigned(pte.write) << " " << unsigned(pte.eager) << " "
       << unsigned(pte.counted) << "\n";
}

std::pair<VAddr, node::Pte>
readPte(Reader &r)
{
    const VAddr vpn = r.u64();
    node::Pte pte;
    pte.frame = r.u64();
    pte.mode = static_cast<node::PageMode>(r.u64());
    pte.write = r.u64() != 0;
    pte.eager = r.u64() != 0;
    pte.counted = r.u64() != 0;
    return {vpn, pte};
}

} // namespace

std::string
Cluster::checkpoint()
{
    if (!_sys->events().empty())
        fatal("checkpoint: %zu events pending — only a quiescent cluster "
              "can be checkpointed",
              _sys->events().pending());
    if (config().fault.enabled())
        fatal("checkpoint: unsupported while the fault layer is engaged "
              "(reliability-protocol state is not serialized)");
    std::string why;
    if (!_sys->ledger().quiescent(&why))
        fatal("checkpoint: %s", why.c_str());

    std::ostringstream os;
    os << kMagic << "\n";
    os << "clock " << _sys->now() << " " << _sys->events().trace().mixed()
       << "\n";
    // The event sequence counter is not directly observable; recover it
    // from executed() — at quiescence every scheduled event has fired,
    // so the next sequence number equals the number executed.
    os << "events " << _sys->events().executed() << "\n";
    os << "hash " << _sys->events().trace().value() << " "
       << _sys->events().trace().mixed() << "\n";
    const auto rng = _sys->rng().state();
    os << "rng " << rng[0] << " " << rng[1] << " " << rng[2] << " "
       << rng[3] << "\n";
    const auto &ledger = _sys->ledger();
    os << "ledger " << ledger.injected << " " << ledger.delivered << " "
       << ledger.dropped << "\n";
    os << "tracer " << _sys->tracer().nextOpId() << "\n";
    os << "va " << _vaNext << "\n";

    os << "nodes " << _nodes.size() << "\n";
    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        node::Workstation &ws = *_nodes[n];
        os << "node " << n << "\n";
        os << "alloc " << ws.nextAsid() << " " << ws.mainNext() << " "
           << ws.shmNext() << "\n";
        os << "ctx " << _nextCtxIdx[n] << " " << _tidCtx[n].size();
        for (std::uint32_t c : _tidCtx[n])
            os << " " << c;
        os << "\n";
        os << "cpu " << ws.cpu().numThreads() << " "
           << ws.cpu().opsIssued() << " " << ws.cpu().contextSwitches()
           << "\n";
        os << "hib " << ws.hib().peekTicket() << " " << ws.hib().peekSeq()
           << " " << ws.hib().packetsHandled() << "\n";

        const auto words = ws.mem().dumpWords();
        os << "mem " << words.size() << "\n";
        for (const auto &[off, val] : words)
            os << off << " " << val << "\n";

        const auto &tags = ws.cache().tags();
        std::size_t live = 0;
        for (PAddr t : tags)
            live += t != 0;
        os << "cache " << tags.size() << " " << ws.cache().hits() << " "
           << ws.cache().misses() << " " << live << "\n";
        for (std::size_t i = 0; i < tags.size(); ++i) {
            if (tags[i] != 0)
                os << i << " " << tags[i] << "\n";
        }

        const auto tlb = ws.mmu().dumpTlb();
        os << "tlb " << tlb.size() << " " << ws.mmu().hits() << " "
           << ws.mmu().misses() << "\n";
        for (const auto &e : tlb) {
            os << e.asid << " ";
            writePte(os, e.vpn, e.pte);
        }

        const auto pages = ws.hib().pageCounters().dump();
        os << "pagec " << pages.size() << " "
           << ws.hib().pageCounters().accesses() << " "
           << ws.hib().pageCounters().alarms() << "\n";
        for (const auto &[frame, c] : pages)
            os << frame << " " << c.reads << " " << c.writes << "\n";

        os << "spaces " << ws.spaces().size() << "\n";
        for (const auto &as : ws.spaces()) {
            const auto ptes = as->dumpPages();
            os << "space " << as->asid() << " " << ptes.size() << "\n";
            for (const auto &[vpn, pte] : ptes)
                writePte(os, vpn, pte);
        }
    }

    const auto entries = _dir->entries();
    os << "dir " << entries.size() << "\n";
    for (const coherence::PageEntry *e : entries) {
        os << "page " << e->home << " " << e->owner << " "
           << unsigned(e->kind) << " " << e->copies.size() << "\n";
        for (const auto &[node, frame] : e->copies)
            os << node << " " << frame << "\n";
        os << e->ring.size();
        for (NodeId r : e->ring)
            os << " " << r;
        os << "\n";
    }
    os << "end\n";
    return os.str();
}

void
Cluster::restore(const std::string &blob)
{
    if (_started)
        fatal("restore: cluster already ran — restore into a freshly "
              "built cluster (replay the setup calls, then restore)");
    if (!_sys->events().empty())
        fatal("restore: %zu events pending before restore",
              _sys->events().pending());
    if (config().fault.enabled())
        fatal("restore: unsupported while the fault layer is engaged");

    Reader r(blob);
    r.expect(kMagic);
    r.expect("clock");
    const Tick now = r.u64();
    (void)r.u64(); // mixed count repeated below with the hash
    r.expect("events");
    const std::uint64_t executed = r.u64();
    _sys->events().restoreClock(now, /*seq=*/executed, executed);
    r.expect("hash");
    {
        const std::uint64_t h = r.u64();
        const std::uint64_t mixed = r.u64();
        _sys->events().trace().restore(h, mixed);
    }
    r.expect("rng");
    {
        std::array<std::uint64_t, 4> s{};
        for (auto &v : s)
            v = r.u64();
        _sys->rng().setState(s);
    }
    r.expect("ledger");
    {
        auto &ledger = _sys->ledger();
        ledger.injected = r.u64();
        ledger.delivered = r.u64();
        ledger.dropped = r.u64();
    }
    r.expect("tracer");
    _sys->tracer().setNextOpId(r.u64());
    r.expect("va");
    _vaNext = r.u64();

    r.expect("nodes");
    if (r.u64() != _nodes.size())
        fatal("restore: checkpoint has a different node count (rebuild "
              "from the same spec first)");
    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        node::Workstation &ws = *_nodes[n];
        r.expect("node");
        if (r.u64() != n)
            fatal("restore: node record out of order");
        r.expect("alloc");
        {
            const std::uint32_t next_asid =
                static_cast<std::uint32_t>(r.u64());
            const PAddr main_next = r.u64();
            const PAddr shm_next = r.u64();
            ws.restoreAllocators(next_asid, main_next, shm_next);
        }
        r.expect("ctx");
        _nextCtxIdx[n] = static_cast<std::uint32_t>(r.u64());
        _tidCtx[n].resize(r.u64());
        for (auto &c : _tidCtx[n])
            c = static_cast<std::uint32_t>(r.u64());
        r.expect("cpu");
        {
            const std::size_t threads = r.u64();
            const std::uint64_t ops = r.u64();
            const std::uint64_t switches = r.u64();
            ws.cpu().restoreScheduler(threads, ops, switches);
        }
        r.expect("hib");
        {
            const std::uint64_t ticket = r.u64();
            const std::uint64_t seq = r.u64();
            const std::uint64_t handled = r.u64();
            ws.hib().restoreCounters(ticket, seq, handled);
        }

        r.expect("mem");
        for (std::uint64_t i = 0, count = r.u64(); i < count; ++i) {
            const PAddr off = r.u64();
            ws.mem().write(off, r.u64());
        }

        r.expect("cache");
        {
            std::vector<PAddr> tags(r.u64(), 0);
            const std::uint64_t hits = r.u64();
            const std::uint64_t misses = r.u64();
            for (std::uint64_t i = 0, live = r.u64(); i < live; ++i) {
                const std::size_t idx = r.u64();
                if (idx >= tags.size())
                    fatal("restore: cache tag index out of range");
                tags[idx] = r.u64();
            }
            ws.cache().restoreState(tags, hits, misses);
        }

        r.expect("tlb");
        {
            std::vector<node::Mmu::TlbSnapshot> entries(r.u64());
            const std::uint64_t hits = r.u64();
            const std::uint64_t misses = r.u64();
            for (auto &e : entries) {
                e.asid = static_cast<std::uint32_t>(r.u64());
                auto [vpn, pte] = readPte(r);
                e.vpn = vpn;
                e.pte = pte;
            }
            ws.mmu().restoreTlb(entries, hits, misses);
        }

        r.expect("pagec");
        {
            std::vector<std::pair<PAddr, hib::PageCounters::Counters>>
                pages(r.u64());
            const std::uint64_t accesses = r.u64();
            const std::uint64_t alarms = r.u64();
            for (auto &[frame, c] : pages) {
                frame = r.u64();
                c.reads = static_cast<std::uint16_t>(r.u64());
                c.writes = static_cast<std::uint16_t>(r.u64());
            }
            ws.hib().pageCounters().restore(pages, accesses, alarms);
        }

        r.expect("spaces");
        for (std::uint64_t i = 0, count = r.u64(); i < count; ++i) {
            r.expect("space");
            const std::uint32_t asid = static_cast<std::uint32_t>(r.u64());
            std::vector<std::pair<VAddr, node::Pte>> ptes(r.u64());
            for (auto &p : ptes)
                p = readPte(r);
            // Spaces created by dead isolated programs have no replayed
            // counterpart; their tables are unreachable, so skip them.
            for (const auto &as : ws.spaces()) {
                if (as->asid() == asid) {
                    as->restorePages(ptes);
                    break;
                }
            }
        }
    }

    r.expect("dir");
    for (std::uint64_t i = 0, count = r.u64(); i < count; ++i) {
        r.expect("page");
        const PAddr home = r.u64();
        const NodeId owner = static_cast<NodeId>(r.u64());
        const auto kind = static_cast<coherence::ProtocolKind>(r.u64());
        std::map<NodeId, PAddr> copies;
        for (std::uint64_t c = 0, ncopies = r.u64(); c < ncopies; ++c) {
            const NodeId node = static_cast<NodeId>(r.u64());
            copies[node] = r.u64();
        }
        std::vector<NodeId> ring(r.u64());
        for (auto &node : ring)
            node = static_cast<NodeId>(r.u64());
        coherence::Protocol *proto =
            kind == coherence::ProtocolKind::None ? nullptr
                                                  : &protocol(kind);
        _dir->restoreEntry(home, owner, kind, proto, copies, ring);
    }
    r.expect("end");
}

} // namespace tg

/**
 * @file
 * Measurement helpers: latency tables and reporting in the
 * paper's units.
 */

#include "api/measure.hpp"

#include <cstdio>
#include <iomanip>

namespace tg {

ResultTable::ResultTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
ResultTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        panic("ResultTable row width mismatch");
    _rows.push_back(std::move(cells));
}

void
ResultTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto line = [&] {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };

    line();
    os << "|";
    for (std::size_t c = 0; c < _headers.size(); ++c)
        os << " " << std::left << std::setw(static_cast<int>(widths[c]))
           << _headers[c] << " |";
    os << "\n";
    line();
    for (const auto &row : _rows) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " |";
        os << "\n";
    }
    line();
}

std::string
ResultTable::num(double v, int digits)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

} // namespace tg

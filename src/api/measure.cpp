/**
 * @file
 * Measurement helpers: latency tables and reporting in the
 * paper's units.
 */

#include "api/measure.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace tg {

ResultTable::ResultTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
ResultTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        panic("ResultTable row width mismatch");
    _rows.push_back(std::move(cells));
}

void
ResultTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto line = [&] {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };

    line();
    os << "|";
    for (std::size_t c = 0; c < _headers.size(); ++c)
        os << " " << std::left << std::setw(static_cast<int>(widths[c]))
           << _headers[c] << " |";
    os << "\n";
    line();
    for (const auto &row : _rows) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " |";
        os << "\n";
    }
    line();
}

std::string
ResultTable::num(double v, int digits)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

// ---------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------

namespace {

/** Deterministic decimal rendering for the JSON document. */
std::string
jsonNum(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

/** JSON-escape a metric/bench name (plain ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

BenchReport::BenchReport(std::string bench, int argc, char **argv)
    : _bench(std::move(bench))
{
    const std::string flag = "--json=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(flag, 0) == 0)
            _path = arg.substr(flag.size());
        else if (arg == "--json")
            _path = "BENCH_" + _bench + ".json";
    }
}

void
BenchReport::metric(const std::string &name, double value,
                    const std::string &unit)
{
    _metrics.push_back(Metric{name, value, unit, 0.0, false});
}

void
BenchReport::anchor(const std::string &name, double value, double paper,
                    const std::string &unit)
{
    _metrics.push_back(Metric{name, value, unit, paper, true});
}

void
BenchReport::topology(const net::TopologySpec &spec)
{
    std::ostringstream os;
    os << "{\"kind\":\"" << spec.model().name()
       << "\",\"nodes\":" << spec.nodes
       << ",\"switches\":" << spec.numSwitches()
       << ",\"bisection_width\":" << spec.bisectionWidth()
       << ",\"describe\":\"" << jsonEscape(spec.describe()) << "\"}";
    _topologyJson = os.str();
}

void
BenchReport::breakdown(const trace::Breakdown &bd)
{
    _breakdownJson = bd.toJson();
}

void
BenchReport::stats(const Cluster &cluster)
{
    std::ostringstream os;
    cluster.statsJson(os);
    _statsJson = os.str();
}

bool
BenchReport::write() const
{
    if (_path.empty())
        return false;
    std::ofstream out(_path);
    if (!out) {
        warn("BenchReport: cannot open %s for writing", _path.c_str());
        return false;
    }
    out << "{\"schema\":\"tg-bench-v1\",\"bench\":\"" << jsonEscape(_bench)
        << "\"";
    if (!_topologyJson.empty())
        out << ",\"topology\":" << _topologyJson;
    out << ",\"metrics\":[";
    for (std::size_t i = 0; i < _metrics.size(); ++i) {
        const Metric &m = _metrics[i];
        out << (i ? "," : "") << "{\"name\":\"" << jsonEscape(m.name)
            << "\",\"value\":" << jsonNum(m.value);
        if (!m.unit.empty())
            out << ",\"unit\":\"" << jsonEscape(m.unit) << "\"";
        if (m.hasPaper)
            out << ",\"paper_anchor\":" << jsonNum(m.paper);
        out << "}";
    }
    out << "]";
    if (!_breakdownJson.empty())
        out << ",\"breakdown\":" << _breakdownJson;
    if (!_statsJson.empty())
        out << ",\"stats\":" << _statsJson;
    out << "}\n";
    std::cout << "wrote " << _path << "\n";
    return true;
}

} // namespace tg

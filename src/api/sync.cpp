/**
 * @file
 * Synchronization primitives built on Telegraphos atomic operations.
 *
 * As required by section 2.3.5, a MEMORY_BARRIER is embedded in every
 * synchronization operation so that all outstanding (acknowledged-early)
 * remote writes complete before the synchronization releases anyone.
 */

#include "api/cluster.hpp"
#include "api/context.hpp"

namespace tg {

namespace {
/** Spin-loop pause between lock probes (ns). */
constexpr Tick kBackoff = 400;
} // namespace

Task<void>
Ctx::lock(VAddr lock_va)
{
    for (;;) {
        const Word old = co_await fetchStore(lock_va, 1);
        if (old == 0)
            break;
        // Test-and-test-and-set: spin on (remote, blocking) reads until
        // the lock looks free, then retry the atomic.
        while (co_await read(lock_va) != 0)
            co_await compute(kBackoff);
    }
    // Embedded MEMORY_BARRIER: the critical section must not begin
    // before our earlier writes completed.
    co_await fence();
}

Task<void>
Ctx::unlock(VAddr lock_va)
{
    // Fence first: every write inside the critical section must be
    // globally performed before the lock is released (section 2.3.5).
    co_await fence();
    co_await write(lock_va, 0);
    co_await fence();
}

Task<void>
Ctx::barrier(VAddr count_va, VAddr gen_va, Word parties, Tick backoff)
{
    co_await fence();
    const Word gen = co_await read(gen_va);
    const Word arrived = co_await fetchAdd(count_va, 1) + 1;
    if (arrived == parties) {
        co_await write(count_va, 0);
        co_await write(gen_va, gen + 1);
        co_await fence();
    } else {
        while (co_await read(gen_va) == gen)
            co_await compute(backoff);
    }
}

} // namespace tg

/**
 * @file
 * Ctx implementation: per-thread handle issuing remote
 * reads/writes/atomics and fences through the node's HIB.
 */

#include "api/context.hpp"

#include "api/cluster.hpp"
#include "hib/special_ops.hpp"

namespace tg {

using node::CpuOp;
using node::OpAwaiter;

Ctx::Ctx(Cluster &cluster, NodeId self, node::Cpu &cpu,
         node::AddressSpace &as, std::uint32_t ctx_idx, std::uint32_t key,
         VAddr ctx_reg_va, VAddr special_reg_va, Rng rng)
    : _cluster(cluster), _self(self), _cpu(cpu), _as(as), _ctxIdx(ctx_idx),
      _key(key), _ctxRegVa(ctx_reg_va), _specialRegVa(special_reg_va),
      _rng(rng)
{
}

Tick
Ctx::now() const
{
    return _cluster.system().now();
}

OpResult<Word>
Ctx::read(VAddr va)
{
    CpuOp op;
    op.kind = CpuOp::Kind::Read;
    op.va = va;
    return OpResult<Word>(*this, _cpu, op);
}

OpResult<void>
Ctx::write(VAddr va, Word value)
{
    CpuOp op;
    op.kind = CpuOp::Kind::Write;
    op.va = va;
    op.value = value;
    return OpResult<void>(*this, _cpu, op);
}

OpAwaiter
Ctx::compute(Tick ticks)
{
    CpuOp op;
    op.kind = CpuOp::Kind::Compute;
    op.ticks = ticks;
    return OpAwaiter{&_cpu, op};
}

OpResult<void>
Ctx::fence()
{
    CpuOp op;
    op.kind = CpuOp::Kind::Fence;
    return OpResult<void>(*this, _cpu, op);
}

LaunchMode
Ctx::effectiveMode() const
{
    if (_mode != LaunchMode::Default)
        return _mode;
    return _cluster.config().prototype == Prototype::TelegraphosI
               ? LaunchMode::Pal
               : LaunchMode::Contexts;
}

// ---------------------------------------------------------------------
// Launch sequences (paper section 2.2.4)
// ---------------------------------------------------------------------

Task<Word>
Ctx::launchContexts(hib::SpecialOp op, VAddr target, VAddr target2,
                    Word datum, Word datum2, bool flash)
{
    // A sequence of uncached writes fills the Telegraphos context; shadow
    // stores communicate physical addresses with access-right checking
    // performed by the TLB; a final read launches the operation.  If the
    // process is preempted mid-sequence, the context preserves its
    // contents (tested in tests/hib/special_ops_test.cpp).
    //
    // In FLASH mode (section 2.2.5) the shadow store names no context
    // and carries no key: the HIB's PID register — maintained by the OS
    // on context switches — selects the context.  With an unmodified OS
    // the address silently lands in the wrong context.
    co_await write(ctxReg(node::kCtxOp), static_cast<Word>(op));
    co_await write(ctxReg(node::kCtxDatum), datum);
    if (op == hib::SpecialOp::Cas)
        co_await write(ctxReg(node::kCtxDatum2), datum2);
    co_await write(shadowOf(target),
                   flash ? hib::flashShadowArg(/*dst_field=*/false)
                         : hib::shadowStoreArg(_ctxIdx, false, _key));
    if (op == hib::SpecialOp::Copy)
        co_await write(shadowOf(target2),
                       flash ? hib::flashShadowArg(/*dst_field=*/true)
                             : hib::shadowStoreArg(_ctxIdx, true, _key));
    const Word old = co_await read(ctxReg(node::kCtxGo));
    co_return old;
}

Task<Word>
Ctx::launchPal(hib::SpecialOp op, VAddr target, VAddr target2, Word datum,
               Word datum2, bool trap_launched)
{
    // Telegraphos I: the HIB is put into special mode; subsequent stores
    // to shared addresses are captured as arguments (the TLB still checks
    // access rights).  The whole sequence runs uninterrupted inside PAL
    // code, so preemption is disabled around it.
    if (!trap_launched) {
        _cpu.disablePreemption();
        co_await compute(_cluster.config().palCall);
    }
    co_await write(specialReg(node::kRegSpecialMode), 1);
    co_await write(specialReg(node::kRegSpecialOp), static_cast<Word>(op));
    co_await write(specialReg(node::kRegSpecialDatum), datum);
    if (op == hib::SpecialOp::Cas)
        co_await write(specialReg(node::kRegSpecialDatum2), datum2);
    co_await write(target, 0); // captured as source address
    if (op == hib::SpecialOp::Copy)
        co_await write(target2, 0); // captured as destination address
    const Word old = co_await read(specialReg(node::kRegSpecialResult));
    co_await write(specialReg(node::kRegSpecialMode), 0);
    if (!trap_launched)
        _cpu.enablePreemption();
    co_return old;
}

Task<Word>
Ctx::launch(hib::SpecialOp op, VAddr target, VAddr target2, Word datum,
            Word datum2)
{
    switch (effectiveMode()) {
      case LaunchMode::Contexts:
        return launchContexts(op, target, target2, datum, datum2);
      case LaunchMode::FlashPid:
        return launchContexts(op, target, target2, datum, datum2,
                              /*flash=*/true);
      case LaunchMode::Pal:
        return launchPal(op, target, target2, datum, datum2, false);
      case LaunchMode::OsTrap:
        // Kernel-mediated launch: pay the trap, then the kernel performs
        // the same uncached register sequence on the user's behalf
        // (validation folded into the trap cost).
        return [](Ctx &self, hib::SpecialOp op_, VAddr t, VAddr t2, Word d,
                  Word d2) -> Task<Word> {
            co_await self.compute(self._cluster.config().osTrap);
            Word old;
            if (self._cluster.config().prototype == Prototype::TelegraphosI)
                old = co_await self.launchPal(op_, t, t2, d, d2, true);
            else
                old = co_await self.launchContexts(op_, t, t2, d, d2);
            co_return old;
        }(*this, op, target, target2, datum, datum2);
      case LaunchMode::Default:
        break;
    }
    panic("unreachable launch mode");
}

Task<Word>
Ctx::fetchStore(VAddr va, Word value)
{
    return launch(hib::SpecialOp::FetchStore, va, 0, value, 0);
}

Task<Word>
Ctx::fetchAdd(VAddr va, Word delta)
{
    return launch(hib::SpecialOp::FetchInc, va, 0, delta, 0);
}

Task<Word>
Ctx::cas(VAddr va, Word expect, Word desired)
{
    return launch(hib::SpecialOp::Cas, va, 0, expect, desired);
}

Task<void>
Ctx::copy(VAddr from, VAddr to, std::uint32_t bytes)
{
    co_await launch(hib::SpecialOp::Copy, from, to, bytes, 0);
}

Task<Word>
Ctx::collLaunch(std::uint32_t group, hib::CollOp op, std::uint32_t root,
                Word datum)
{
    // Same shape as launchContexts: uncached descriptor writes into the
    // per-thread context page, then one blocking GO read.  The CPU
    // releases the TurboChannel before the read stalls (hib::Hib::regRead),
    // so the bus stays free while the tree protocol runs NIC-to-NIC.
    co_await write(ctxReg(node::kCtxCollOp), static_cast<Word>(op));
    co_await write(ctxReg(node::kCtxCollGroup), group);
    co_await write(ctxReg(node::kCtxCollRoot), root);
    co_await write(ctxReg(node::kCtxCollDatum), datum);
    const Word result = co_await read(ctxReg(node::kCtxCollGo));
    co_return result;
}

} // namespace tg

/**
 * @file
 * Measurement helpers used by tests, benches and examples.
 */

#ifndef TELEGRAPHOS_API_MEASURE_HPP
#define TELEGRAPHOS_API_MEASURE_HPP

#include <iostream>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "sim/stats.hpp"

namespace tg {

/** Simulated-time stopwatch (the paper's measurements, section 3.2,
 *  time batches of operations the same way). */
class Stopwatch
{
  public:
    explicit Stopwatch(Ctx &ctx) : _ctx(ctx), _t0(ctx.now()) {}

    void restart() { _t0 = _ctx.now(); }
    Tick elapsed() const { return _ctx.now() - _t0; }
    double elapsedUs() const { return toUs(elapsed()); }

  private:
    Ctx &_ctx;
    Tick _t0;
};

/** Row-oriented table printer for paper-style result tables. */
class ResultTable
{
  public:
    explicit ResultTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os = std::cout) const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string num(double v, int digits = 2);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Shared machine-readable reporting for every bench binary.
 *
 * Each bench constructs one BenchReport from its main() arguments,
 * records its headline numbers with metric()/anchor() while printing its
 * usual human tables, and calls write() at the end.  When the binary was
 * invoked with `--json=<path>` the report is written to that path as a
 * schema-versioned JSON document (schema "tg-bench-v1"); without the
 * flag, write() is a no-op — so CI can persist BENCH_*.json artifacts
 * while interactive runs stay unchanged.
 *
 * Document shape:
 * @code
 *   {"schema":"tg-bench-v1","bench":"<name>",
 *    "topology":{"kind":...,"nodes":...,"switches":...,
 *                "bisection_width":...,"describe":...},  // optional
 *    "metrics":[{"name":...,"value":...,"unit":...,"paper_anchor":...}],
 *    "breakdown":{...tg-breakdown-v1...},   // optional
 *    "stats":{...tg-stats-v1...}}           // optional
 * @endcode
 */
class BenchReport
{
  public:
    /** @param bench  binary name recorded in the document
     *  @param argc/argv  main()'s arguments; parses `--json=<path>`. */
    BenchReport(std::string bench, int argc, char **argv);

    /** True when `--json=<path>` was given. */
    bool jsonRequested() const { return !_path.empty(); }

    /** Destination path ("" without the flag). */
    const std::string &jsonPath() const { return _path; }

    /** Record one result value.  @p unit is free-form ("us", "MB/s"). */
    void metric(const std::string &name, double value,
                const std::string &unit = "");

    /** Record a result that reproduces a number from the paper:
     *  @p paper is the paper's measured value in the same unit. */
    void anchor(const std::string &name, double value, double paper,
                const std::string &unit = "us");

    /** Record the interconnect the bench ran on; the JSON document is
     *  then self-describing (switch count, bisection width). */
    void topology(const net::TopologySpec &spec);

    /** Attach a latency breakdown (tg-breakdown-v1 sub-document). */
    void breakdown(const trace::Breakdown &bd);

    /** Attach a cluster's full stats dump (tg-stats-v1 sub-document). */
    void stats(const Cluster &cluster);

    /** Write the JSON document to the `--json` path.  No-op (returning
     *  false) without the flag; warns and returns false when the path
     *  cannot be opened. */
    bool write() const;

  private:
    struct Metric
    {
        std::string name;
        double value;
        std::string unit;
        double paper;
        bool hasPaper;
    };

    std::string _bench;
    std::string _path;
    std::vector<Metric> _metrics;
    std::string _topologyJson;
    std::string _breakdownJson;
    std::string _statsJson;
};

} // namespace tg

#endif // TELEGRAPHOS_API_MEASURE_HPP

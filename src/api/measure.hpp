/**
 * @file
 * Measurement helpers used by tests, benches and examples.
 */

#ifndef TELEGRAPHOS_API_MEASURE_HPP
#define TELEGRAPHOS_API_MEASURE_HPP

#include <iostream>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "sim/stats.hpp"

namespace tg {

/** Simulated-time stopwatch (the paper's measurements, section 3.2,
 *  time batches of operations the same way). */
class Stopwatch
{
  public:
    explicit Stopwatch(Ctx &ctx) : _ctx(ctx), _t0(ctx.now()) {}

    void restart() { _t0 = _ctx.now(); }
    Tick elapsed() const { return _ctx.now() - _t0; }
    double elapsedUs() const { return toUs(elapsed()); }

  private:
    Ctx &_ctx;
    Tick _t0;
};

/** Row-oriented table printer for paper-style result tables. */
class ResultTable
{
  public:
    explicit ResultTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os = std::cout) const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string num(double v, int digits = 2);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace tg

#endif // TELEGRAPHOS_API_MEASURE_HPP

/**
 * @file
 * Collective operations (barrier, broadcast, reduction)
 * built from Telegraphos special ops.
 */

#include "api/collectives.hpp"

#include <algorithm>

namespace tg {

namespace {
constexpr Tick kPoll = 600;
} // namespace

Communicator::Communicator(Cluster &cluster, const std::string &name,
                           std::vector<NodeId> members,
                           std::size_t max_words)
    : _cluster(cluster), _members(std::move(members)), _maxWords(max_words)
{
    if (_members.size() < 2)
        fatal("Communicator %s: needs at least 2 members", name.c_str());

    for (std::size_t r = 0; r < _members.size(); ++r) {
        Segment &seg = cluster.allocShared(
            name + ".bcast" + std::to_string(r), (8 + max_words) * 8,
            _members[r]);
        for (NodeId m : _members) {
            if (m != _members[r])
                seg.eagerTo(m);
        }
        _bcast.push_back(&seg);
    }
    _scratch = &cluster.allocShared(name + ".scratch",
                                    (2 * kRounds + 8) * 8, _members[0]);

    for (NodeId m : _members) {
        _bcastSeen[m].assign(_members.size(), 0);
        _reduceRound[m] = 0;
    }
}

std::size_t
Communicator::rankOf(NodeId n) const
{
    auto it = std::find(_members.begin(), _members.end(), n);
    if (it == _members.end())
        fatal("Communicator: node %u is not a member", unsigned(n));
    return std::size_t(it - _members.begin());
}

Task<void>
Communicator::barrier(Ctx &ctx)
{
    co_await ctx.barrier(barCountVa(), barGenVa(), Word(_members.size()));
}

Task<void>
Communicator::broadcast(Ctx &ctx, std::vector<Word> &io, NodeId root)
{
    const std::size_t root_rank = rankOf(root);
    std::uint64_t &seen = _bcastSeen[ctx.self()][root_rank];
    const std::uint64_t gen = ++seen;

    if (ctx.self() == root) {
        if (io.size() > _maxWords)
            fatal("Communicator: broadcast of %zu words exceeds max %zu",
                  io.size(), _maxWords);
        // Local stores into the eagerly-mapped page: the HIB multicasts
        // them to every member's receive copy (section 2.2.7).
        for (std::size_t w = 0; w < io.size(); ++w)
            co_await ctx.write(bcastWordVa(root_rank, w), io[w]);
        co_await ctx.fence(); // payload before the generation bump
        co_await ctx.write(bcastGenVa(root_rank), Word(gen));
        co_await ctx.fence();
        co_return;
    }

    // Members poll their *local* copy of the root's generation word.
    while (co_await ctx.read(bcastGenVa(root_rank)) < Word(gen))
        co_await ctx.compute(kPoll);
    io.resize(_maxWords);
    for (std::size_t w = 0; w < _maxWords; ++w)
        io[w] = co_await ctx.read(bcastWordVa(root_rank, w));
}

Task<Word>
Communicator::reduceSum(Ctx &ctx, Word contribution, NodeId root)
{
    const std::uint64_t round = _reduceRound[ctx.self()]++;
    const std::size_t slot = round % kRounds;
    const Word parties = Word(_members.size());

    // Contribute, then signal arrival (both remote atomics at the
    // scratch home; fetch&add returns make them race-free).
    co_await ctx.fetchAdd(accVa(slot), contribution);
    co_await ctx.fetchAdd(arrVa(slot), 1);

    Word result = 0;
    if (ctx.self() == root) {
        while (co_await ctx.read(arrVa(slot)) < parties)
            co_await ctx.compute(kPoll);
        result = co_await ctx.read(accVa(slot));
        // Reset the slot for its reuse kRounds from now; everyone has
        // arrived, so no contribution can race the reset.
        co_await ctx.write(accVa(slot), 0);
        co_await ctx.write(arrVa(slot), 0);
        co_await ctx.fence();
    } else {
        // Non-roots must not run ahead into the same slot before the
        // root drained it: wait for the reset.
        while (co_await ctx.read(arrVa(slot)) != 0)
            co_await ctx.compute(kPoll);
    }
    co_return result;
}

Task<Word>
Communicator::allReduceSum(Ctx &ctx, Word contribution)
{
    const NodeId root = _members[0];
    const Word partial = co_await reduceSum(ctx, contribution, root);
    std::vector<Word> io;
    if (ctx.self() == root)
        io.push_back(partial);
    co_await broadcast(ctx, io, root);
    co_return io[0];
}

} // namespace tg

/**
 * @file
 * Communicator implementation: the software (Host) collective
 * algorithms and the thin descriptor path onto the NIC engine.
 */

#include "api/collectives.hpp"

#include <algorithm>

namespace tg {

namespace {
constexpr Tick kPoll = 600;
} // namespace

Tick
Communicator::pollGap() const
{
    // Completion polls back off proportionally to the group size: with
    // hundreds of members spinning remote reads at one home node, a
    // fixed gap buries the home (and the simulator) under poll traffic
    // that only adds queueing ahead of the arrivals it waits for.
    return kPoll * Tick(_members.size());
}

Communicator::Communicator(BuildKey, Cluster &cluster,
                           const std::string &name,
                           std::vector<NodeId> members,
                           CollectiveBackend backend,
                           std::uint32_t group_id, std::size_t max_words)
    : _cluster(cluster), _members(std::move(members)), _backend(backend),
      _groupId(group_id), _maxWords(max_words)
{
    if (_members.size() < 2)
        fatal("Communicator %s: needs at least 2 members", name.c_str());
    _traceComp = cluster.tracer().registerComponent("comm." + name);

    if (_backend == CollectiveBackend::Nic) {
        // One shared group object registered with every member's engine:
        // all members see the same reduction/multicast tree bit-for-bit,
        // and no host scratch memory exists at all.
        auto group = std::make_shared<hib::CollGroup>(
            group_id, _members, cluster.network().spec(),
            cluster.config().collFanout);
        for (NodeId m : _members)
            cluster.hibOf(m).collectives().registerGroup(group);
        return;
    }

    for (std::size_t r = 0; r < _members.size(); ++r) {
        Segment &seg = cluster.allocShared(
            name + ".bcast" + std::to_string(r), (8 + max_words) * 8,
            _members[r]);
        for (NodeId m : _members) {
            if (m != _members[r])
                seg.eagerTo(m);
        }
        _bcast.push_back(&seg);
    }
    _scratch = &cluster.allocShared(name + ".scratch",
                                    (2 * kRounds + 8) * 8, _members[0]);

    for (NodeId m : _members) {
        _bcastSeen[m].assign(_members.size(), 0);
        _reduceRound[m] = 0;
    }
}

std::size_t
Communicator::rankOf(NodeId n) const
{
    auto it = std::find(_members.begin(), _members.end(), n);
    if (it == _members.end())
        fatal("Communicator: node %u is not a member", unsigned(n));
    return std::size_t(it - _members.begin());
}

std::uint64_t
Communicator::faultsNow(Ctx &ctx) const
{
    // Failures visible to this member: losses charged to its node, plus
    // (NIC backend) collectives its engine completed with the error flag
    // — a loss elsewhere in the tree rides down to it in-band.
    std::uint64_t n = ctx.wireFailures();
    if (_backend == CollectiveBackend::Nic)
        n += _cluster.hibOf(ctx.self()).collectives().errors();
    return n;
}

OpError
Communicator::errorSince(Ctx &ctx, std::uint64_t before) const
{
    return faultsNow(ctx) > before ? OpError::LinkFailure : OpError::None;
}

std::uint64_t
Communicator::hostTraceBegin(trace::OpKind kind)
{
    const std::uint64_t id = _cluster.tracer().beginOp(kind);
    _cluster.tracer().record(id, trace::Span::CpuIssue, _cluster.now(),
                             _traceComp);
    return id;
}

void
Communicator::hostTraceEnd(std::uint64_t id)
{
    _cluster.tracer().record(id, trace::Span::Completion, _cluster.now(),
                             _traceComp);
}

Task<Result<void>>
Communicator::barrier(Ctx &ctx)
{
    const std::uint64_t before = faultsNow(ctx);

    if (_backend == CollectiveBackend::Nic) {
        co_await ctx.collLaunch(_groupId, hib::CollOp::Barrier, 0, 0);
        co_return Result<void>(errorSince(ctx, before));
    }

    const std::uint64_t op = hostTraceBegin(trace::OpKind::CollBarrier);
    co_await ctx.barrier(barCountVa(), barGenVa(), Word(_members.size()),
                         pollGap());
    hostTraceEnd(op);
    co_return Result<void>(errorSince(ctx, before));
}

Task<Result<void>>
Communicator::broadcast(Ctx &ctx, std::vector<Word> &io, NodeId root)
{
    const std::size_t root_rank = rankOf(root);
    if (ctx.self() == root && io.size() > _maxWords)
        fatal("Communicator: broadcast of %zu words exceeds max %zu",
              io.size(), _maxWords);
    const std::uint64_t before = faultsNow(ctx);

    if (_backend == CollectiveBackend::Nic) {
        // Stage the payload buffer against this thread's context, then
        // launch: the engine reads it at the root and DMAs the delivered
        // words into it everywhere else.
        _cluster.hibOf(ctx.self()).collectives().stage(ctx.ctxIndex(),
                                                       &io);
        co_await ctx.collLaunch(_groupId, hib::CollOp::Bcast,
                                std::uint32_t(root_rank), 0);
        co_return Result<void>(errorSince(ctx, before));
    }

    co_return co_await hostBroadcast(ctx, io, root, before);
}

Task<Result<void>>
Communicator::hostBroadcast(Ctx &ctx, std::vector<Word> &io, NodeId root,
                            std::uint64_t before)
{
    const std::size_t root_rank = rankOf(root);
    std::uint64_t &seen = _bcastSeen[ctx.self()][root_rank];
    const std::uint64_t gen = ++seen;
    const std::uint64_t op = hostTraceBegin(trace::OpKind::CollBcast);

    if (ctx.self() == root) {
        // Local stores into the eagerly-mapped page: the HIB multicasts
        // them to every member's receive copy (section 2.2.7).
        for (std::size_t w = 0; w < io.size(); ++w)
            co_await ctx.write(bcastWordVa(root_rank, w), io[w]);
        co_await ctx.write(bcastCountVa(root_rank), Word(io.size()));
        co_await ctx.fence(); // payload before the generation bump
        co_await ctx.write(bcastGenVa(root_rank), Word(gen));
        co_await ctx.fence();
        hostTraceEnd(op);
        co_return Result<void>(errorSince(ctx, before));
    }

    // Members poll their *local* copy of the root's generation word.
    while (co_await ctx.read(bcastGenVa(root_rank)) < Word(gen))
        co_await ctx.compute(pollGap());
    const Word count = co_await ctx.read(bcastCountVa(root_rank));
    io.resize(std::size_t(count));
    for (std::size_t w = 0; w < io.size(); ++w)
        io[w] = co_await ctx.read(bcastWordVa(root_rank, w));
    hostTraceEnd(op);
    co_return Result<void>(errorSince(ctx, before));
}

Task<Result<ReduceOut>>
Communicator::reduceSum(Ctx &ctx, Word contribution, NodeId root)
{
    const std::size_t root_rank = rankOf(root);
    const std::uint64_t before = faultsNow(ctx);

    if (_backend == CollectiveBackend::Nic) {
        const Word sum = co_await ctx.collLaunch(
            _groupId, hib::CollOp::Reduce, std::uint32_t(root_rank),
            contribution);
        co_return Result<ReduceOut>(ReduceOut{ctx.self() == root, sum},
                                    errorSince(ctx, before));
    }

    const std::uint64_t op = hostTraceBegin(trace::OpKind::CollReduce);
    const std::uint64_t round = _reduceRound[ctx.self()]++;
    const std::size_t slot = round % kRounds;
    const Word parties = Word(_members.size());

    // Contribute, then signal arrival (both remote atomics at the
    // scratch home; fetch&add returns make them race-free).
    co_await ctx.fetchAdd(accVa(slot), contribution);
    co_await ctx.fetchAdd(arrVa(slot), 1);

    Word result = 0;
    if (ctx.self() == root) {
        while (co_await ctx.read(arrVa(slot)) < parties)
            co_await ctx.compute(pollGap());
        result = co_await ctx.read(accVa(slot));
        // Reset the slot for its reuse kRounds from now; everyone has
        // arrived, so no contribution can race the reset.
        co_await ctx.write(accVa(slot), 0);
        co_await ctx.write(arrVa(slot), 0);
        co_await ctx.fence();
    } else {
        // Non-roots must not run ahead into the same slot before the
        // root drained it: wait for the reset.
        while (co_await ctx.read(arrVa(slot)) != 0)
            co_await ctx.compute(pollGap());
    }
    hostTraceEnd(op);
    co_return Result<ReduceOut>(ReduceOut{ctx.self() == root, result},
                                errorSince(ctx, before));
}

Task<Result<Word>>
Communicator::allReduceSum(Ctx &ctx, Word contribution)
{
    const std::uint64_t before = faultsNow(ctx);

    if (_backend == CollectiveBackend::Nic) {
        const Word sum = co_await ctx.collLaunch(
            _groupId, hib::CollOp::AllReduce, 0, contribution);
        co_return Result<Word>(sum, errorSince(ctx, before));
    }

    const NodeId root = _members[0];
    const ReduceOut part = co_await reduceSum(ctx, contribution, root);
    std::vector<Word> io;
    if (ctx.self() == root)
        io.push_back(part.value);
    co_await broadcast(ctx, io, root);
    co_return Result<Word>(io.empty() ? 0 : io[0],
                           errorSince(ctx, before));
}

} // namespace tg

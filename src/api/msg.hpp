/**
 * @file
 * Message passing over Telegraphos remote writes.
 *
 * The paper positions the remote write as "the central operation on
 * Telegraphos" and the basis for efficient message passing (sections 1,
 * 3.2: "applications that want to send small messages can do that very
 * efficiently").  This library builds a single-producer single-consumer
 * message channel from nothing but the hardware primitives:
 *
 *  - the data ring (slots + tail counter) lives in a segment homed at
 *    the *receiver*, so the sender's stores are non-blocking remote
 *    writes (~0.7 us) and the receiver polls local memory;
 *  - flow-control credits return through a segment homed at the
 *    *sender*, so the sender also polls locally (sender-based memory
 *    management in the spirit of Hamlyn [7]);
 *  - a MEMORY_BARRIER orders each message's payload before its tail
 *    publication (section 2.3.5).
 *
 * No OS is involved anywhere on the fast path.
 */

#ifndef TELEGRAPHOS_API_MSG_HPP
#define TELEGRAPHOS_API_MSG_HPP

#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {

/** A one-way SPSC message channel between two nodes. */
class MsgChannel
{
  public:
    /**
     * Build a channel from @p sender to @p receiver.
     * @param slots      ring capacity in messages
     * @param slot_words payload words per message
     */
    MsgChannel(Cluster &cluster, const std::string &name, NodeId sender,
               NodeId receiver, std::size_t slots, std::size_t slot_words);

    NodeId sender() const { return _sender; }
    NodeId receiver() const { return _receiver; }
    std::size_t slotWords() const { return _slotWords; }

    /**
     * Send one message (payload truncated/padded to slotWords).  Blocks
     * (spinning on the local credit word) while the ring is full.
     * Sender-side cost for small messages: a handful of remote writes +
     * one fence.
     */
    Task<void> send(Ctx &ctx, std::vector<Word> payload);

    /** Receive the next message; blocks (polling local memory) until
     *  one arrives. */
    Task<std::vector<Word>> recv(Ctx &ctx);

    /** Non-blocking probe: true when a message is waiting (receiver
     *  side, local read). */
    Task<Word> pending(Ctx &ctx);

    std::uint64_t sent() const { return _sent; }
    std::uint64_t received() const { return _received; }

  private:
    /** Ring layout inside the data segment (all 64-bit words). */
    VAddr tailVa() const { return _data->word(0); }
    VAddr slotVa(std::uint64_t idx, std::size_t w) const
    {
        return _data->word(8 + (idx % _slots) * _slotWords + w);
    }
    VAddr headVa() const { return _credit->word(0); }

    NodeId _sender;
    NodeId _receiver;
    std::size_t _slots;
    std::size_t _slotWords;
    Segment *_data;   ///< homed at the receiver: slots + tail
    Segment *_credit; ///< homed at the sender: head (consumed count)

    // Host-side cursors (each end's private position; the shared state
    // is entirely in simulated memory).
    std::uint64_t _sendCursor = 0;
    std::uint64_t _recvCursor = 0;
    std::uint64_t _sent = 0;
    std::uint64_t _received = 0;
};

} // namespace tg

#endif // TELEGRAPHOS_API_MSG_HPP

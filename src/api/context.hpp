/**
 * @file
 * Ctx: the per-program handle to Telegraphos operations.
 *
 * Programs are coroutines receiving a Ctx&.  Plain loads/stores map to
 * single awaited operations; atomic and copy operations are *special
 * operations* launched by the multi-instruction sequences of paper
 * section 2.2.4 — through PAL-protected special mode on Telegraphos I,
 * through contexts + keys + shadow addressing on Telegraphos II, or
 * through an OS trap (the baseline the paper argues against).
 */

#ifndef TELEGRAPHOS_API_CONTEXT_HPP
#define TELEGRAPHOS_API_CONTEXT_HPP

#include <type_traits>

#include "api/result.hpp"
#include "hib/special_ops.hpp"
#include "node/address.hpp"
#include "node/cpu.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace tg {

class Cluster;
class Ctx;

/** How special operations are launched (experiment A1 sweeps this). */
enum class LaunchMode
{
    Default,  ///< follow the prototype (I -> Pal, II -> Contexts)
    Pal,      ///< Telegraphos I: special mode inside PAL code
    Contexts, ///< Telegraphos II: contexts + keys + shadow addressing
    OsTrap,   ///< trap into the kernel for every special op (baseline)
    FlashPid, ///< FLASH-style: a PID register the OS must maintain (2.2.5)
};

/** Shadow virtual address of @p va (differs only in the highest bit). */
constexpr VAddr
shadowOf(VAddr va)
{
    return va | node::kShadowBit;
}

/**
 * co_await-able remote operation yielding Result<T>.
 *
 * Wraps the CPU's raw OpAwaiter and snapshots the context's wire-failure
 * count across the suspension: a failure charged to this node while the
 * operation was in flight surfaces as OpError::LinkFailure on exactly
 * the operation that observed it (the lost read that unblocked empty,
 * the fence that drained over a lost write).
 */
template <typename T>
class OpResult
{
  public:
    OpResult(Ctx &ctx, node::Cpu &cpu, const node::CpuOp &op)
        : _ctx(&ctx), _inner{&cpu, op}
    {
    }

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Result<T> await_resume() const;

  private:
    Ctx *_ctx;
    node::OpAwaiter _inner;
    std::uint64_t _before = 0;
};

/** Per-thread program context. */
class Ctx
{
  public:
    Ctx(Cluster &cluster, NodeId self, node::Cpu &cpu,
        node::AddressSpace &as, std::uint32_t ctx_idx, std::uint32_t key,
        VAddr ctx_reg_va, VAddr special_reg_va, Rng rng);

    NodeId self() const { return _self; }
    Cluster &cluster() { return _cluster; }
    Rng &rng() { return _rng; }
    Tick now() const;

    void setLaunchMode(LaunchMode m) { _mode = m; }

    // ------------------------------------------------------------------
    // Error status (fault model; see DESIGN.md "Fault model")
    // ------------------------------------------------------------------

    /**
     * Sticky status of this node's remote operations.  LinkFailure means
     * at least one operation since the last clearError() was lost by the
     * network after exhausting its retry budget (or was failed over
     * during an administrative outage): the operation completed — the
     * fence drained, a blocked read unblocked with value 0 — but its
     * effect did not happen remotely.
     */
    OpError lastError() const { return _lastError; }

    /** Reset lastError() to OpError::None. */
    void clearError() { _lastError = OpError::None; }

    /** Wire failures charged to this node so far. */
    std::uint64_t wireFailures() const { return _wireFailureCount; }

    /** Record a wire failure against this context (Cluster failure path). */
    void noteWireFailure()
    {
        _lastError = OpError::LinkFailure;
        ++_wireFailureCount;
    }

    // ------------------------------------------------------------------
    // Single-instruction operations
    // ------------------------------------------------------------------

    /** Load one word (blocking when remote, section 2.2.1).  Yields
     *  Result<Word>: the value plus whether it was actually delivered
     *  (implicitly converts to Word for the fault-free path). */
    OpResult<Word> read(VAddr va);

    /** Store one word (non-blocking when remote, section 2.2.1). */
    OpResult<void> write(VAddr va, Word value);

    /** Burn @p ticks of computation. */
    node::OpAwaiter compute(Tick ticks);

    /** MEMORY_BARRIER: wait for all outstanding remote ops (2.3.5).
     *  Yields Result<void>: LinkFailure when an operation the fence
     *  drained over was lost by the network. */
    OpResult<void> fence();

    // ------------------------------------------------------------------
    // Special operations (multi-instruction launch sequences, 2.2.4)
    // ------------------------------------------------------------------

    /** fetch&store: atomically exchange; returns the old value. */
    Task<Word> fetchStore(VAddr va, Word value);

    /** fetch&inc (generalised to fetch&add); returns the old value. */
    Task<Word> fetchAdd(VAddr va, Word delta = 1);

    /** compare&swap; returns the old value. */
    Task<Word> cas(VAddr va, Word expect, Word desired);

    /** Non-blocking remote copy of @p bytes from @p from to @p to
     *  (to must be locally homed); completion is fence-tracked (2.2.2). */
    Task<void> copy(VAddr from, VAddr to, std::uint32_t bytes);

    // ------------------------------------------------------------------
    // NIC collectives (DESIGN.md section 15; used by Communicator)
    // ------------------------------------------------------------------

    /** Index of this thread's Telegraphos context on its node — the
     *  descriptor slot the HIB collective engine stages payloads for. */
    std::uint32_t ctxIndex() const { return _ctxIdx; }

    /**
     * NIC collective launch sequence: four uncached writes assemble the
     * descriptor in this thread's context (kCtxCollOp/Group/Root/Datum),
     * then one blocking read of kCtxCollGo arms the engine and stalls
     * until the collective completes locally.  Yields the result word
     * (reduced total where the op defines one, 0 otherwise).
     */
    Task<Word> collLaunch(std::uint32_t group, hib::CollOp op,
                          std::uint32_t root, Word datum);

    // ------------------------------------------------------------------
    // Synchronization (implemented in sync.cpp; FENCE embedded, 2.3.5)
    // ------------------------------------------------------------------

    /** Spin lock via fetch&store with test-and-test-and-set backoff. */
    Task<void> lock(VAddr lock_va);

    /** Release a lock (fences first so protected writes are visible). */
    Task<void> unlock(VAddr lock_va);

    /**
     * Sense-reversing barrier over (count, generation) words homed on
     * one node; @p parties programs must call it.  @p backoff is the
     * compute gap between generation polls — large groups should back
     * off proportionally so the home node is not buried under polls.
     */
    Task<void> barrier(VAddr count_va, VAddr gen_va, Word parties,
                       Tick backoff = 400);

  private:
    /** The Telegraphos II context / shadow-addressing launch sequence
     *  (@p flash: use the FLASH PID convention instead of keys). */
    Task<Word> launchContexts(hib::SpecialOp op, VAddr target, VAddr target2,
                              Word datum, Word datum2, bool flash = false);

    /** The Telegraphos I PAL + special-mode launch sequence. */
    Task<Word> launchPal(hib::SpecialOp op, VAddr target, VAddr target2,
                         Word datum, Word datum2, bool trap_launched);

    Task<Word> launch(hib::SpecialOp op, VAddr target, VAddr target2,
                      Word datum, Word datum2);

    LaunchMode effectiveMode() const;

    VAddr ctxReg(PAddr field) const { return _ctxRegVa + field; }
    VAddr specialReg(PAddr reg) const
    {
        return _specialRegVa + (reg - node::kHibRegBase);
    }

    Cluster &_cluster;
    NodeId _self;
    node::Cpu &_cpu;
    node::AddressSpace &_as;
    std::uint32_t _ctxIdx;
    std::uint32_t _key;
    VAddr _ctxRegVa;     ///< where this thread's context page is mapped
    VAddr _specialRegVa; ///< where the Telegraphos I register page is mapped
    Rng _rng;
    LaunchMode _mode = LaunchMode::Default;
    OpError _lastError = OpError::None;
    std::uint64_t _wireFailureCount = 0;
};

template <typename T>
inline void
OpResult<T>::await_suspend(std::coroutine_handle<> h)
{
    _before = _ctx->wireFailures();
    _inner.await_suspend(h);
}

template <typename T>
inline Result<T>
OpResult<T>::await_resume() const
{
    const OpError err = _ctx->wireFailures() > _before
                            ? OpError::LinkFailure
                            : OpError::None;
    if constexpr (std::is_void_v<T>)
        return Result<void>(err);
    else
        return Result<T>(_inner.result, err);
}

} // namespace tg

#endif // TELEGRAPHOS_API_CONTEXT_HPP

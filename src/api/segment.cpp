/**
 * @file
 * Segment implementation: shared-memory allocation,
 * replication and peek/poke debugging access.
 */

#include "api/segment.hpp"

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "node/address.hpp"

namespace tg {

using coherence::PageEntry;
using coherence::ProtocolKind;
using node::PageMode;
using node::Pte;

Segment::Segment(Cluster &cluster, std::string name, VAddr base,
                 std::size_t pages, NodeId owner, PAddr home_frame)
    : _cluster(cluster), _name(std::move(name)), _base(base), _pages(pages),
      _owner(owner), _home(home_frame)
{
}

std::size_t
Segment::bytes() const
{
    return _pages * _cluster.config().pageBytes;
}

VAddr
Segment::shadowWord(std::size_t i) const
{
    return shadowOf(word(i));
}

PAddr
Segment::homePage(std::size_t p) const
{
    return _home + PAddr(p) * _cluster.config().pageBytes;
}

void
Segment::replicate(NodeId n, ProtocolKind kind)
{
    _replKind = kind;
    const std::uint32_t page_bytes = _cluster.config().pageBytes;
    coherence::Directory &dir = _cluster.directory();
    coherence::Protocol &proto = _cluster.protocol(kind);

    for (std::size_t p = 0; p < _pages; ++p) {
        const PAddr home = homePage(p);
        PageEntry *e = dir.byHome(home);
        if (!e) {
            e = &dir.create(home, _owner, kind, &proto);
            proto.onCopyAdded(*e, _owner);
        }
        if (e->kind != kind)
            fatal("segment %s page %zu already replicated under %s",
                  _name.c_str(), p, protocolKindName(e->kind));
        if (e->hasCopy(n))
            continue;

        const PAddr local = _cluster.node(n).allocShmFrames(1);
        // Instant (setup-time) content copy.
        node::MainMemory &src = _cluster.memOf(_owner);
        node::MainMemory &dst = _cluster.memOf(n);
        for (std::uint32_t w = 0; w < page_bytes / 8; ++w) {
            dst.write(node::offsetOf(local) + PAddr(w) * 8,
                      src.read(node::offsetOf(home) + PAddr(w) * 8));
        }
        dir.addCopy(*e, n, local);
        proto.onCopyAdded(*e, n);

        const VAddr va = _base + p * page_bytes;
        node::AddressSpace &as = _cluster.node(n).defaultAddressSpace();
        if (Pte *pte = as.find(va)) {
            pte->frame = local;
            pte->mode = PageMode::SharedLocal;
        }
        _cluster.node(n).mmu().flushPage(as.asid(), va);
    }
}

void
Segment::eagerTo(NodeId reader)
{
    if (reader == _owner)
        fatal("segment %s: eagerTo(owner) is meaningless", _name.c_str());
    const std::uint32_t page_bytes = _cluster.config().pageBytes;

    for (std::size_t p = 0; p < _pages; ++p) {
        const PAddr home = homePage(p);
        const PAddr local = _cluster.node(reader).allocShmFrames(1);

        node::MainMemory &src = _cluster.memOf(_owner);
        node::MainMemory &dst = _cluster.memOf(reader);
        for (std::uint32_t w = 0; w < page_bytes / 8; ++w) {
            dst.write(node::offsetOf(local) + PAddr(w) * 8,
                      src.read(node::offsetOf(home) + PAddr(w) * 8));
        }

        // Receive copy mapped locally at the reader...
        const VAddr va = _base + p * page_bytes;
        node::AddressSpace &as = _cluster.node(reader).defaultAddressSpace();
        if (Pte *pte = as.find(va)) {
            pte->frame = local;
            pte->mode = PageMode::SharedLocal;
        }
        _cluster.node(reader).mmu().flushPage(as.asid(), va);

        // ...and the owner's page mapped out to it (HIB multicast list).
        _cluster.hibOf(_owner).multicast().addEntry(home, reader, local);
    }
}

void
Segment::armCounters(NodeId n, std::uint16_t reads, std::uint16_t writes)
{
    if (n == _owner)
        fatal("segment %s: counters meter *remote* accesses", _name.c_str());
    const std::uint32_t page_bytes = _cluster.config().pageBytes;
    node::AddressSpace &as = _cluster.node(n).defaultAddressSpace();

    for (std::size_t p = 0; p < _pages; ++p) {
        _cluster.hibOf(n).pageCounters().set(homePage(p), reads, writes);
        const VAddr va = _base + p * page_bytes;
        if (Pte *pte = as.find(va))
            pte->counted = true;
        _cluster.node(n).mmu().flushPage(as.asid(), va);
    }
}

Word
Segment::peek(std::size_t i) const
{
    return _cluster.memOf(_owner).read(node::offsetOf(homeWord(i)));
}

Word
Segment::peekCopy(NodeId n, std::size_t i) const
{
    if (n == _owner)
        return peek(i);
    const std::uint32_t page_bytes = _cluster.config().pageBytes;
    const std::size_t p = (i * 8) / page_bytes;
    PageEntry *e = _cluster.directory().byHome(homePage(p));
    if (!e || !e->hasCopy(n))
        fatal("segment %s: node %u has no copy for peekCopy", _name.c_str(),
              unsigned(n));
    const PAddr local = e->copyFrame(n) + (i * 8) % page_bytes;
    return _cluster.memOf(n).read(node::offsetOf(local));
}

void
Segment::poke(std::size_t i, Word v)
{
    _cluster.memOf(_owner).write(node::offsetOf(homeWord(i)), v);
}

} // namespace tg

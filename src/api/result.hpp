/**
 * @file
 * tg::Result — value-or-error outcome of a remote operation.
 *
 * Remote operations complete even when the network permanently loses
 * their packets (the fence drains, a blocked read unblocks with 0) — the
 * fault model's visible-error contract.  Result<T> carries that status
 * with the operation's value, so `co_await ctx.read(va)` yields both:
 *
 * @code
 *   tg::Result<tg::Word> r = co_await ctx.read(va);
 *   if (!r.ok())   // OpError::LinkFailure: the value never arrived
 *       recover();
 *   tg::Word v = r;  // implicit conversion for the common fault-free path
 * @endcode
 *
 * The implicit conversion keeps `Word v = co_await ctx.read(va)` working
 * unchanged; callers that care about delivery inspect ok()/error().
 * (Ctx::lastError() remains as a sticky per-context aggregate.)
 */

#ifndef TELEGRAPHOS_API_RESULT_HPP
#define TELEGRAPHOS_API_RESULT_HPP

namespace tg {

/** Error status of a remote operation (or of a context's history). */
enum class OpError
{
    None,        ///< delivered normally
    LinkFailure, ///< lost by the network after exhausting its retries
};

/** Short mnemonic for an OpError. */
constexpr const char *
opErrorName(OpError e)
{
    return e == OpError::None ? "none" : "link_failure";
}

/** Outcome of a value-producing remote operation. */
template <typename T>
class Result
{
  public:
    /** Value-free default (ok, zero value): Task<Result<T>> promise slot. */
    Result() = default;

    Result(T value, OpError error) : _value(value), _error(error) {}

    /** True when every packet of the operation was delivered. */
    bool ok() const { return _error == OpError::None; }
    OpError error() const { return _error; }

    /** The operation's value (0 when a lost read unblocked empty). */
    T value() const { return _value; }

    /** Migration shim: use the result where a plain T is expected. */
    operator T() const { return _value; }

  private:
    T _value{};
    OpError _error = OpError::None;
};

/** Outcome of a remote operation with no value (write, fence). */
template <>
class Result<void>
{
  public:
    explicit Result(OpError error = OpError::None) : _error(error) {}

    bool ok() const { return _error == OpError::None; }
    OpError error() const { return _error; }

  private:
    OpError _error;
};

} // namespace tg

#endif // TELEGRAPHOS_API_RESULT_HPP

/**
 * @file
 * Segment: a region of Telegraphos shared memory.
 *
 * A segment is homed on its owner node's shared memory (HIB SRAM on
 * prototype I, pinned main memory on prototype II) and mapped at the same
 * virtual address on every node.  Remote nodes reach it through HIB
 * remote reads/writes; replication, eager-update mapping and access
 * counters are configured per segment.
 */

#ifndef TELEGRAPHOS_API_SEGMENT_HPP
#define TELEGRAPHOS_API_SEGMENT_HPP

#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "sim/types.hpp"

namespace tg {

class Cluster;

/** A shared-memory segment. */
class Segment
{
  public:
    Segment(Cluster &cluster, std::string name, VAddr base,
            std::size_t pages, NodeId owner, PAddr home_frame);

    const std::string &name() const { return _name; }
    VAddr base() const { return _base; }
    std::size_t pages() const { return _pages; }
    std::size_t bytes() const;
    NodeId owner() const { return _owner; }
    PAddr homeFrame() const { return _home; }

    /** Virtual address of 64-bit word @p i. */
    VAddr word(std::size_t i) const { return _base + i * 8; }

    /** Shadow virtual address of word @p i (Telegraphos II launches). */
    VAddr shadowWord(std::size_t i) const;

    /** Home (owner-side) physical address of word @p i. */
    PAddr homeWord(std::size_t i) const { return _home + i * 8; }

    /** Home physical page base of page @p p. */
    PAddr homePage(std::size_t p) const;

    /**
     * Give @p n a local copy of the whole segment under protocol
     * @p kind (instant bookkeeping; use for experiment setup —
     * Cluster::replicatePageLive is the charged runtime path).
     */
    void replicate(NodeId n, coherence::ProtocolKind kind);

    /** Default protocol used when alarm-driven replication creates
     *  entries for this segment's pages. */
    void setReplicationKind(coherence::ProtocolKind kind) { _replKind = kind; }
    coherence::ProtocolKind replicationKind() const { return _replKind; }

    /**
     * Raw eager-update mapping (paper section 2.2.7, message-passing
     * flavour): give @p reader a local receive copy and map the owner's
     * pages out to it through the HIB multicast list.  No directory
     * entry is created; single-writer usage is assumed.
     */
    void eagerTo(NodeId reader);

    /**
     * Program the access counters for this segment's pages on node
     * @p n's HIB and mark @p n's mappings as counted (section 2.2.6).
     */
    void armCounters(NodeId n, std::uint16_t reads, std::uint16_t writes);

    /** Functional read of word @p i straight from the home storage
     *  (test/bench oracle, no timing). */
    Word peek(std::size_t i) const;

    /** Functional read of word @p i from @p n's local copy (oracle). */
    Word peekCopy(NodeId n, std::size_t i) const;

    /** Functional write of word @p i at home (initialisation). */
    void poke(std::size_t i, Word v);

  private:
    friend class Cluster;

    Cluster &_cluster;
    std::string _name;
    VAddr _base;
    std::size_t _pages;
    NodeId _owner;
    PAddr _home;
    coherence::ProtocolKind _replKind = coherence::ProtocolKind::OwnerCounter;
};

} // namespace tg

#endif // TELEGRAPHOS_API_SEGMENT_HPP

/**
 * @file
 * Cluster: the top-level public API of the Telegraphos reproduction.
 *
 * A Cluster owns a complete simulated machine room: N workstations with
 * HIBs, the switch network, the shared-page directory and the coherence
 * protocols.  Users allocate shared segments, spawn coroutine programs on
 * nodes, and run the simulation:
 *
 * @code
 *   tg::Cluster cluster(tg::ClusterSpec::star(2));
 *   auto &seg = cluster.allocShared("data", 4096, 0);
 *   cluster.spawn(1, [&](tg::Ctx &ctx) -> tg::Task<void> {
 *       co_await ctx.write(seg.word(0), 42);     // remote write
 *       tg::Word v = co_await ctx.read(seg.word(0)); // remote read
 *       co_await ctx.fence();
 *   });
 *   cluster.run();
 * @endcode
 *
 * Specs come from the named constructors
 * (star/chain/ring/torus/torus3d/fatTree) refined by chainers;
 * Cluster::build() is the non-aborting factory for user-supplied
 * configurations.
 */

#ifndef TELEGRAPHOS_API_CLUSTER_HPP
#define TELEGRAPHOS_API_CLUSTER_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/protocol.hpp"
#include "net/network.hpp"
#include "node/workstation.hpp"
#include "os/os_kernel.hpp"
#include "sim/expected.hpp"
#include "sim/system.hpp"
#include "sim/task.hpp"

namespace tg {

class Communicator;
class Ctx;
class Segment;

/**
 * Where collective operations execute (DESIGN.md section 15).
 *
 * Host: software trees over the paper's primitives — eager-update
 * broadcast pages, remote fetch&add reductions, sense-reversing
 * barriers.  The CPU drives every step.
 *
 * Nic: the HIB's collective engine — the host writes one descriptor and
 * blocks on a single register read while CollUp/CollDown packets run the
 * combine/fan-out tree NIC-to-NIC.
 */
enum class CollectiveBackend
{
    Host,
    Nic,
};

/**
 * Everything needed to build a cluster.
 *
 * Construct with a named topology constructor and refine with chainers:
 *
 * @code
 *   auto spec = tg::ClusterSpec::torus(4, 4, 4)
 *                   .protocol(tg::coherence::ProtocolKind::OwnerCounter)
 *                   .trace(true)
 *                   .seed(7);
 * @endcode
 *
 * The raw `topology` field went away as promised one release ago: the
 * interconnect description is now read-only (topology() accessor), and
 * every spec comes from the named builders or, for runtime-assembled
 * sweeps, fromTopology().
 */
struct ClusterSpec
{
    Config config;
    /** Replication protocol newly allocated segments default to. */
    coherence::ProtocolKind defaultProtocol =
        coherence::ProtocolKind::OwnerCounter;
    /** Backend Cluster::communicator() builds collectives on. */
    CollectiveBackend defaultCollectives = CollectiveBackend::Host;

    /** The interconnect description the builders assembled. */
    const net::TopologySpec &topology() const { return _topology; }

    /**
     * Adopt a runtime-assembled net::TopologySpec verbatim (parameter
     * sweeps, rejection-path tests).  Validation still happens in
     * Cluster::build() / the Cluster constructor.
     */
    static ClusterSpec fromTopology(const net::TopologySpec &t);

    // ------------------------------------------------------------------
    // Named constructors (one per topology)
    // ------------------------------------------------------------------

    /** One central switch, @p nodes one hop apart. */
    static ClusterSpec star(std::size_t nodes);

    /** Switches in a line, @p perSwitch nodes each. */
    static ClusterSpec chain(std::size_t nodes, std::size_t perSwitch = 4);

    /** Switches in a cycle (>= 3), @p perSwitch nodes each. */
    static ClusterSpec ring(std::size_t nodes, std::size_t perSwitch = 4);

    /** @p x by @p y torus of switches, @p perSwitch nodes each
     *  (nodes = x * y * perSwitch). */
    static ClusterSpec torus(std::size_t x, std::size_t y,
                             std::size_t perSwitch = 4);

    /** @p x by @p y by @p z torus of switches, @p perSwitch nodes each
     *  (nodes = x * y * z * perSwitch). */
    static ClusterSpec torus3d(std::size_t x, std::size_t y, std::size_t z,
                               std::size_t perSwitch = 4);

    /** Two-level fat-tree: leaves of @p perSwitch nodes under @p spines
     *  spine switches (0: one spine per leaf uplink = perSwitch). */
    static ClusterSpec fatTree(std::size_t nodes,
                               std::size_t perSwitch = 4,
                               std::size_t spines = 0);

    /** Topology chosen at runtime (parameter sweeps).  Star/Chain/Ring
     *  map directly; Torus2D/Torus3D pick the most-square (most-cubical)
     *  switch grid for nodes/perSwitch switches (nodes is rounded up to
     *  fill it); FatTree gets perSwitch spines. */
    static ClusterSpec forKind(net::TopologyKind kind, std::size_t nodes,
                               std::size_t perSwitch = 4);

    // ------------------------------------------------------------------
    // Chainers
    // ------------------------------------------------------------------

    /** Default replication protocol for shared segments. */
    ClusterSpec &protocol(coherence::ProtocolKind kind);

    /** Backend for Communicator collective operations. */
    ClusterSpec &collectives(CollectiveBackend b);

    /** Record packet-lifecycle spans (latency breakdowns, p50/p99). */
    ClusterSpec &trace(bool on = true);

    /** Trace only 1 in 2^shift operations (deterministic id-hash subset;
     *  0 restores full tracing).  See Config::traceSampleShift. */
    ClusterSpec &traceSample(std::uint32_t shift);

    /** Seed for all stochastic decisions (determinism contract). */
    ClusterSpec &seed(std::uint64_t s);

    /** Which hardware prototype is modelled. */
    ClusterSpec &prototype(Prototype p);

    /** Link fault model (inert spec disables it). */
    ClusterSpec &faults(const FaultSpec &f);

    /** Shards for the parallel fabric engine (Config::shards): packet
     *  workloads built from this spec (net::FabricSim, the scaling
     *  benches) execute on @p n PDES shards with identical results —
     *  the digest is shard-count invariant (DESIGN.md section 13).
     *  The full Cluster model itself still runs sequentially. */
    ClusterSpec &shards(std::uint32_t n);

    /** Escape hatch: arbitrary Config tuning without raw field pokes at
     *  call sites (`spec.tune([](tg::Config &c) { c.linkDelay = 50; })`). */
    template <typename F>
    ClusterSpec &
    tune(F &&fn)
    {
        fn(config);
        return *this;
    }

  private:
    net::TopologySpec _topology;
};

/** A simulated Telegraphos workstation cluster. */
class Cluster : public coherence::Fabric
{
  public:
    using Body = std::function<Task<void>(Ctx &)>;

    /**
     * Construct-or-die: validates the spec via fatal() on rejection.
     * Fine for tests and fixed-configuration tools; code taking user
     * input should use build().
     */
    explicit Cluster(const ClusterSpec &spec);
    ~Cluster() override;

    /**
     * Non-aborting factory: returns the built cluster, or the
     * ConfigError explaining why the spec was rejected (0 nodes,
     * non-rectangular torus, port overflow, ...).  fatal() never fires
     * on this path for bad user input.
     */
    static Expected<std::unique_ptr<Cluster>, ConfigError>
    build(const ClusterSpec &spec);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    System &system() override { return *_sys; }
    const Config &config() const { return _sys->config(); }
    std::size_t numNodes() const { return _nodes.size(); }
    node::Workstation &node(NodeId n) { return *_nodes.at(n); }
    os::OsKernel &os(NodeId n) { return *_kernels.at(n); }
    net::Network &network() { return *_net; }
    Tick now() const { return _sys->now(); }

    // coherence::Fabric
    hib::Hib &hibOf(NodeId n) override { return _nodes.at(n)->hib(); }
    node::MainMemory &memOf(NodeId n) override { return _nodes.at(n)->mem(); }
    coherence::Directory &directory() override { return *_dir; }
    void onCopyInvalidated(coherence::PageEntry &e, NodeId n,
                           PAddr target_frame) override;

    coherence::Protocol &protocol(coherence::ProtocolKind kind);

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /**
     * Allocate a shared segment of @p bytes homed on @p owner and map it
     * at the same virtual address into every node's default address
     * space (remote nodes access it through the HIB).
     */
    Segment &allocShared(const std::string &name, std::size_t bytes,
                         NodeId owner);

    /** Allocate private (cacheable, node-local) memory on @p n. */
    VAddr allocPrivate(NodeId n, std::size_t bytes);

    /**
     * Build a communicator over @p members on the spec's collective
     * backend (ClusterSpec::collectives).  This is the only construction
     * path: group ids, NIC engine registration and host scratch memory
     * are cluster-managed.  @p max_words is the widest broadcast payload.
     */
    Communicator &communicator(const std::string &name,
                               std::vector<NodeId> members,
                               std::size_t max_words = 64);

    /** Reserve @p pages of virtual address space (no mapping installed);
     *  used by software layers like the VSM baseline. */
    VAddr allocVaPages(std::size_t pages) { return allocVa(pages); }

    /**
     * Charged, runtime replication of one page (used by alarm policies):
     * copies the page to @p n with the HIB's bulk-copy engine, registers
     * the copy, remaps the virtual page and flushes the TLB.
     */
    void replicatePageLive(NodeId n, PAddr home_page,
                           std::function<void()> done = nullptr);

    // ------------------------------------------------------------------
    // Programs
    // ------------------------------------------------------------------

    /** Spawn a program on node @p n; returns its thread id on that node. */
    int spawn(NodeId n, Body body);

    /**
     * Spawn a program in a *fresh address space* on @p n: nothing is
     * mapped except its own Telegraphos context page and the special
     * register page.  Demonstrates the paper's protection model
     * (section 2.1): without mappings, shared segments are simply
     * unreachable — any access faults.
     */
    int spawnIsolated(NodeId n, Body body);

    /**
     * Model a FLASH-style modified operating system (section 2.2.5):
     * install context-switch hooks that save/restore the HIB's PID
     * register, charging the extra interrupt-handler work per switch.
     * Without this, LaunchMode::FlashPid silently corrupts contexts
     * under multiprogramming — exactly the paper's argument for keys.
     */
    void enableFlashOsSupport();

    /**
     * Run the simulation until every spawned program finished or
     * @p limit ticks passed.  @return simulated end time.
     */
    Tick run(Tick limit = kMaxTick);

    /** True when every spawned program has finished. */
    bool allDone() const;

    /** True when any program was killed (protection fault etc.). */
    bool anyKilled() const;

    /** Register a write-observation hook (tests/benches). */
    void observeWrites(std::function<void(const coherence::ApplyEvent &)> cb);

    // ------------------------------------------------------------------
    // Audit layer (DESIGN.md section 7)
    // ------------------------------------------------------------------

    /**
     * FNV-1a digest of the run so far: every fired event plus every
     * packet crossing a HIB boundary.  Two same-seed runs of the same
     * program must produce equal digests — the determinism contract.
     */
    std::uint64_t traceHash() const { return _sys->events().trace().value(); }

    /** Words folded into the trace hash (sanity: must be > 0 after run). */
    std::uint64_t traceLength() const { return _sys->events().trace().mixed(); }

    /**
     * Packet-conservation check for a finished (quiescent) run: every
     * injected packet was delivered or visibly dropped.  @return true
     * when conserved; otherwise false with the imbalance in @p why.
     */
    bool
    auditQuiescent(std::string *why = nullptr) const
    {
        return _sys->ledger().quiescent(why);
    }

    /**
     * Write a structured end-of-run statistics report: per-node CPU,
     * cache, TLB, TurboChannel and HIB counters plus network totals.
     */
    void statsReport(std::ostream &os);

    /** Dump every registered stat as a single JSON object
     *  (StatRegistry::dumpJson, schema tg-stats-v1). */
    void statsJson(std::ostream &os) const
    {
        _sys->stats().dumpJson(os);
    }

    // ------------------------------------------------------------------
    // Packet-lifecycle tracer (DESIGN.md section 8)
    // ------------------------------------------------------------------

    /** The tracer (enable via Config::tracePackets or setEnabled()). */
    trace::Tracer &tracer() { return _sys->tracer(); }
    const trace::Tracer &tracer() const { return _sys->tracer(); }

    /** Per-operation latency breakdown derived from the recording: the
     *  paper's 0.70 us / 7.2 us anchors decomposed into component
     *  costs, one table block per operation kind. */
    trace::Breakdown latencyBreakdown() const
    {
        return _sys->tracer().breakdown();
    }

    /** Export the recording as Chrome trace_event JSON
     *  (chrome://tracing, https://ui.perfetto.dev). */
    void writeChromeTrace(std::ostream &os) const
    {
        _sys->tracer().writeChromeTrace(os);
    }

    /** All segments allocated so far. */
    const std::vector<std::unique_ptr<Segment>> &segments() const
    {
        return _segments;
    }

    /** Segment containing home page @p home_page (nullptr if none). */
    Segment *segmentOfHome(PAddr home_page);

    // ------------------------------------------------------------------
    // Checkpoint / restore (DESIGN.md section 14.5)
    // ------------------------------------------------------------------

    /**
     * Serialize the cluster's semantic state into a self-contained text
     * blob (schema tg-ckpt-v1): simulation clock + event sequence, trace
     * hash, RNG stream, packet ledger, per-node memory / cache / TLB /
     * page-table / HIB-counter state and the page directory.
     *
     * Only legal at quiescence (no pending events, packet ledger
     * conserved) with the fault layer disengaged — in-flight hardware
     * state is deliberately never serialized.  Cumulative statistics not
     * listed above (link/bus counters, sampler contents) restart from
     * zero after a restore; the determinism contract does not depend on
     * them.
     */
    std::string checkpoint();

    /**
     * Restore a checkpoint() blob.  Must be called on a freshly built
     * cluster *after* replaying the identical setup sequence (same spec,
     * same allocShared/allocPrivate/segment-replication calls, no spawns
     * or runs yet).  After restore, continuing the workload produces
     * bit-identical trace hashes to a run that never checkpointed.
     * fatal()s on schema/shape mismatches.
     */
    void restore(const std::string &blob);

  private:
    friend class Segment;

    VAddr allocVa(std::size_t pages);
    int spawnIn(NodeId n, node::AddressSpace &as, Body body);

    /** Network failure handler: the reliability layer permanently gave
     *  up on @p pkt.  Routes the loss to the victim node's HIB (counter
     *  conservation) and marks that node's contexts with LinkFailure. */
    void wireFailure(net::Packet &&pkt);

    std::unique_ptr<System> _sys;
    std::unique_ptr<coherence::Directory> _dir;
    std::unique_ptr<net::Network> _net;
    std::vector<std::unique_ptr<node::Workstation>> _nodes;
    std::vector<std::unique_ptr<os::OsKernel>> _kernels;
    std::vector<std::unique_ptr<coherence::Protocol>> _protocols;
    std::vector<std::unique_ptr<Segment>> _segments;
    std::vector<std::unique_ptr<Ctx>> _ctxs;
    std::vector<std::unique_ptr<Communicator>> _comms;

    coherence::ProtocolKind _defaultProtocol =
        coherence::ProtocolKind::OwnerCounter;
    CollectiveBackend _collBackend = CollectiveBackend::Host;
    std::uint32_t _nextGroupId = 1;
    VAddr _vaNext = 0x2000'0000;
    std::vector<std::uint32_t> _nextCtxIdx; // per node
    /** Telegraphos context index of each thread, per node (PID hook). */
    std::vector<std::vector<std::uint32_t>> _tidCtx;
    bool _started = false;
};

} // namespace tg

#endif // TELEGRAPHOS_API_CLUSTER_HPP

/**
 * @file
 * Cluster: the top-level public API of the Telegraphos reproduction.
 *
 * A Cluster owns a complete simulated machine room: N workstations with
 * HIBs, the switch network, the shared-page directory and the coherence
 * protocols.  Users allocate shared segments, spawn coroutine programs on
 * nodes, and run the simulation:
 *
 * @code
 *   tg::ClusterSpec spec;
 *   spec.topology.nodes = 2;
 *   tg::Cluster cluster(spec);
 *   auto &seg = cluster.allocShared("data", 4096, 0);
 *   cluster.spawn(1, [&](tg::Ctx &ctx) -> tg::Task<void> {
 *       co_await ctx.write(seg.word(0), 42);     // remote write
 *       tg::Word v = co_await ctx.read(seg.word(0)); // remote read
 *       co_await ctx.fence();
 *   });
 *   cluster.run();
 * @endcode
 */

#ifndef TELEGRAPHOS_API_CLUSTER_HPP
#define TELEGRAPHOS_API_CLUSTER_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/protocol.hpp"
#include "net/network.hpp"
#include "node/workstation.hpp"
#include "os/os_kernel.hpp"
#include "sim/system.hpp"
#include "sim/task.hpp"

namespace tg {

class Ctx;
class Segment;

/** Everything needed to build a cluster. */
struct ClusterSpec
{
    Config config;
    net::TopologySpec topology;
};

/** A simulated Telegraphos workstation cluster. */
class Cluster : public coherence::Fabric
{
  public:
    using Body = std::function<Task<void>(Ctx &)>;

    explicit Cluster(const ClusterSpec &spec);
    ~Cluster() override;

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    System &system() override { return *_sys; }
    const Config &config() const { return _sys->config(); }
    std::size_t numNodes() const { return _nodes.size(); }
    node::Workstation &node(NodeId n) { return *_nodes.at(n); }
    os::OsKernel &os(NodeId n) { return *_kernels.at(n); }
    net::Network &network() { return *_net; }
    Tick now() const { return _sys->now(); }

    // coherence::Fabric
    hib::Hib &hibOf(NodeId n) override { return _nodes.at(n)->hib(); }
    node::MainMemory &memOf(NodeId n) override { return _nodes.at(n)->mem(); }
    coherence::Directory &directory() override { return *_dir; }
    void onCopyInvalidated(coherence::PageEntry &e, NodeId n,
                           PAddr target_frame) override;

    coherence::Protocol &protocol(coherence::ProtocolKind kind);

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /**
     * Allocate a shared segment of @p bytes homed on @p owner and map it
     * at the same virtual address into every node's default address
     * space (remote nodes access it through the HIB).
     */
    Segment &allocShared(const std::string &name, std::size_t bytes,
                         NodeId owner);

    /** Allocate private (cacheable, node-local) memory on @p n. */
    VAddr allocPrivate(NodeId n, std::size_t bytes);

    /** Reserve @p pages of virtual address space (no mapping installed);
     *  used by software layers like the VSM baseline. */
    VAddr allocVaPages(std::size_t pages) { return allocVa(pages); }

    /**
     * Charged, runtime replication of one page (used by alarm policies):
     * copies the page to @p n with the HIB's bulk-copy engine, registers
     * the copy, remaps the virtual page and flushes the TLB.
     */
    void replicatePageLive(NodeId n, PAddr home_page,
                           std::function<void()> done = nullptr);

    // ------------------------------------------------------------------
    // Programs
    // ------------------------------------------------------------------

    /** Spawn a program on node @p n; returns its thread id on that node. */
    int spawn(NodeId n, Body body);

    /**
     * Spawn a program in a *fresh address space* on @p n: nothing is
     * mapped except its own Telegraphos context page and the special
     * register page.  Demonstrates the paper's protection model
     * (section 2.1): without mappings, shared segments are simply
     * unreachable — any access faults.
     */
    int spawnIsolated(NodeId n, Body body);

    /**
     * Model a FLASH-style modified operating system (section 2.2.5):
     * install context-switch hooks that save/restore the HIB's PID
     * register, charging the extra interrupt-handler work per switch.
     * Without this, LaunchMode::FlashPid silently corrupts contexts
     * under multiprogramming — exactly the paper's argument for keys.
     */
    void enableFlashOsSupport();

    /**
     * Run the simulation until every spawned program finished or
     * @p limit ticks passed.  @return simulated end time.
     */
    Tick run(Tick limit = kMaxTick);

    /** True when every spawned program has finished. */
    bool allDone() const;

    /** True when any program was killed (protection fault etc.). */
    bool anyKilled() const;

    /** Register a write-observation hook (tests/benches). */
    void observeWrites(std::function<void(const coherence::ApplyEvent &)> cb);

    // ------------------------------------------------------------------
    // Audit layer (DESIGN.md section 7)
    // ------------------------------------------------------------------

    /**
     * FNV-1a digest of the run so far: every fired event plus every
     * packet crossing a HIB boundary.  Two same-seed runs of the same
     * program must produce equal digests — the determinism contract.
     */
    std::uint64_t traceHash() const { return _sys->events().trace().value(); }

    /** Words folded into the trace hash (sanity: must be > 0 after run). */
    std::uint64_t traceLength() const { return _sys->events().trace().mixed(); }

    /**
     * Packet-conservation check for a finished (quiescent) run: every
     * injected packet was delivered or visibly dropped.  @return true
     * when conserved; otherwise false with the imbalance in @p why.
     */
    bool
    auditQuiescent(std::string *why = nullptr) const
    {
        return _sys->ledger().quiescent(why);
    }

    /**
     * Write a structured end-of-run statistics report: per-node CPU,
     * cache, TLB, TurboChannel and HIB counters plus network totals.
     */
    void statsReport(std::ostream &os);

    /** Dump every registered stat as a single JSON object
     *  (StatRegistry::dumpJson, schema tg-stats-v1). */
    void statsJson(std::ostream &os) const
    {
        _sys->stats().dumpJson(os);
    }

    // ------------------------------------------------------------------
    // Packet-lifecycle tracer (DESIGN.md section 8)
    // ------------------------------------------------------------------

    /** The tracer (enable via Config::tracePackets or setEnabled()). */
    trace::Tracer &tracer() { return _sys->tracer(); }
    const trace::Tracer &tracer() const { return _sys->tracer(); }

    /** Per-operation latency breakdown derived from the recording: the
     *  paper's 0.70 us / 7.2 us anchors decomposed into component
     *  costs, one table block per operation kind. */
    trace::Breakdown latencyBreakdown() const
    {
        return _sys->tracer().breakdown();
    }

    /** Export the recording as Chrome trace_event JSON
     *  (chrome://tracing, https://ui.perfetto.dev). */
    void writeChromeTrace(std::ostream &os) const
    {
        _sys->tracer().writeChromeTrace(os);
    }

    /** All segments allocated so far. */
    const std::vector<std::unique_ptr<Segment>> &segments() const
    {
        return _segments;
    }

    /** Segment containing home page @p home_page (nullptr if none). */
    Segment *segmentOfHome(PAddr home_page);

  private:
    friend class Segment;

    VAddr allocVa(std::size_t pages);
    int spawnIn(NodeId n, node::AddressSpace &as, Body body);

    /** Network failure handler: the reliability layer permanently gave
     *  up on @p pkt.  Routes the loss to the victim node's HIB (counter
     *  conservation) and marks that node's contexts with LinkFailure. */
    void wireFailure(net::Packet &&pkt);

    std::unique_ptr<System> _sys;
    std::unique_ptr<coherence::Directory> _dir;
    std::unique_ptr<net::Network> _net;
    std::vector<std::unique_ptr<node::Workstation>> _nodes;
    std::vector<std::unique_ptr<os::OsKernel>> _kernels;
    std::vector<std::unique_ptr<coherence::Protocol>> _protocols;
    std::vector<std::unique_ptr<Segment>> _segments;
    std::vector<std::unique_ptr<Ctx>> _ctxs;

    VAddr _vaNext = 0x2000'0000;
    std::vector<std::uint32_t> _nextCtxIdx; // per node
    /** Telegraphos context index of each thread, per node (PID hook). */
    std::vector<std::vector<std::uint32_t>> _tidCtx;
    bool _started = false;
};

} // namespace tg

#endif // TELEGRAPHOS_API_CLUSTER_HPP

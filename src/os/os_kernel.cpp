/**
 * @file
 * Operating-system cost model: traps, page faults,
 * interrupts and replication services.
 */

#include "os/os_kernel.hpp"

#include <cinttypes>

namespace tg::os {

OsKernel::OsKernel(System &sys, const std::string &name,
                   node::Workstation &ws)
    : SimObject(sys, name), _ws(ws)
{
}

void
OsKernel::install()
{
    _ws.cpu().setFaultHandler(
        [this](VAddr va, bool w, std::function<void()> retry,
               std::function<void(std::string)> kill) {
            handleFault(va, w, std::move(retry), std::move(kill));
        });
    _ws.hib().setAlarmHandler([this](PAddr page, bool w) {
        handleAlarm(page, w);
    });
}

void
OsKernel::addFaultService(FaultService svc)
{
    _services.push_back(std::move(svc));
}

void
OsKernel::setAlarmPolicy(AlarmPolicy policy)
{
    _alarmPolicy = std::move(policy);
}

void
OsKernel::onWireFailure(const net::Packet &pkt)
{
    // Pure accounting: the handler's interrupt cost is not charged, so
    // the counter is observable regardless of when the run stops.
    ++_linkFailIrqs;
    Trace::log(now(), "os", "%s link-failure interrupt: %s", _name.c_str(),
               pkt.toString().c_str());
}

void
OsKernel::handleFault(VAddr va, bool is_write, std::function<void()> retry,
                      std::function<void(std::string)> kill)
{
    ++_faults;
    // Trap into the kernel.
    schedule(config().osTrap, [this, va, is_write, retry = std::move(retry),
                               kill = std::move(kill)] {
        for (auto &svc : _services) {
            if (svc(va, is_write, retry, kill))
                return;
        }
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "segmentation fault: va=%llx %s", (unsigned long long)va,
                      is_write ? "write" : "read");
        kill(buf);
    });
}

void
OsKernel::handleAlarm(PAddr page_frame, bool is_write)
{
    ++_alarms;
    if (_alarmPolicy)
        _alarmPolicy(page_frame, is_write);
}

} // namespace tg::os

/**
 * @file
 * Alarm-based replication policy (paper section 2.2.6, ref [5]).
 *
 * The OS programs small values into the page access counters of
 * remotely-mapped pages; when a counter alarm fires ("the number of
 * accesses exceeds a threshold"), the policy replicates the page locally
 * so subsequent accesses become local.  With very large counter values
 * the same hardware acts as a profiler instead.
 */

#ifndef TELEGRAPHOS_OS_REPLICATION_POLICY_HPP
#define TELEGRAPHOS_OS_REPLICATION_POLICY_HPP

#include <functional>
#include <unordered_set>

#include "os/os_kernel.hpp"

namespace tg::os {

/** Replicate-on-alarm policy for one node. */
class AlarmReplicator
{
  public:
    /**
     * @param os         the node's kernel (alarm policy is installed here)
     * @param threshold  accesses before the alarm fires
     * @param replicate  (page_frame, retrigger_write) -> start replication;
     *                   provided by the cluster, charges its own costs
     */
    AlarmReplicator(OsKernel &os, std::uint16_t threshold,
                    std::function<void(PAddr, bool)> replicate);

    /** Arm the counters of one remotely-mapped page on this node's HIB. */
    void arm(PAddr page_frame);

    std::uint64_t replications() const { return _replications; }

  private:
    OsKernel &_os;
    std::uint16_t _threshold;
    std::function<void(PAddr, bool)> _replicate;
    std::unordered_set<PAddr> _inFlight;
    std::uint64_t _replications = 0;
};

} // namespace tg::os

#endif // TELEGRAPHOS_OS_REPLICATION_POLICY_HPP

/**
 * @file
 * Per-node operating system model.
 *
 * Telegraphos needs the OS only for setup (mapping shared pages) and for
 * the slow paths: page faults, counter alarms, and the Telegraphos I
 * PAL-code launch sequences.  This kernel model charges 1995-era DEC
 * OSF/1 costs for those paths and dispatches them to registered services
 * (the VSM baseline, replication policies, ...).
 */

#ifndef TELEGRAPHOS_OS_OS_KERNEL_HPP
#define TELEGRAPHOS_OS_OS_KERNEL_HPP

#include <functional>
#include <vector>

#include "node/workstation.hpp"
#include "sim/sim_object.hpp"

namespace tg::os {

/** The operating system of one workstation. */
class OsKernel : public SimObject
{
  public:
    /**
     * A fault service inspects a faulting access and either repairs the
     * mapping (then calls retry) and returns true, or returns false to
     * let the next service try.
     */
    using FaultService =
        std::function<bool(VAddr, bool, std::function<void()>,
                           std::function<void(std::string)>)>;

    /** Alarm policy: invoked on page-counter alarms (2.2.6). */
    using AlarmPolicy = std::function<void(PAddr page_frame, bool is_write)>;

    OsKernel(System &sys, const std::string &name, node::Workstation &ws);

    node::Workstation &workstation() { return _ws; }

    /** Hook the kernel into the CPU fault path and the HIB alarm line. */
    void install();

    /** Register a fault service (tried in registration order). */
    void addFaultService(FaultService svc);

    /** Set the policy consulted on page-counter alarms. */
    void setAlarmPolicy(AlarmPolicy policy);

    /**
     * The HIB raised a link-failure interrupt: the network permanently
     * gave up on @p pkt with this node as the victim.  The kernel
     * accounts the event; the user-visible half of the signal is the
     * owning context's OpError::LinkFailure.
     */
    void onWireFailure(const net::Packet &pkt);

    std::uint64_t faults() const { return _faults; }
    std::uint64_t alarms() const { return _alarms; }
    std::uint64_t linkFailureInterrupts() const { return _linkFailIrqs; }

  private:
    void handleFault(VAddr va, bool is_write, std::function<void()> retry,
                     std::function<void(std::string)> kill);
    void handleAlarm(PAddr page_frame, bool is_write);

    node::Workstation &_ws;
    std::vector<FaultService> _services;
    AlarmPolicy _alarmPolicy;
    std::uint64_t _faults = 0;
    std::uint64_t _alarms = 0;
    std::uint64_t _linkFailIrqs = 0;
};

} // namespace tg::os

#endif // TELEGRAPHOS_OS_OS_KERNEL_HPP

/**
 * @file
 * Alarm-driven page replication policy
 * (access-counter feedback loop).
 */

#include "os/replication_policy.hpp"

namespace tg::os {

AlarmReplicator::AlarmReplicator(OsKernel &os, std::uint16_t threshold,
                                 std::function<void(PAddr, bool)> replicate)
    : _os(os), _threshold(threshold), _replicate(std::move(replicate))
{
    _os.setAlarmPolicy([this](PAddr page, bool is_write) {
        if (_inFlight.count(page))
            return; // replication already under way
        _inFlight.insert(page);
        ++_replications;
        _replicate(page, is_write);
    });
}

void
AlarmReplicator::arm(PAddr page_frame)
{
    _os.workstation().hib().pageCounters().set(page_frame, _threshold,
                                               _threshold);
}

} // namespace tg::os

/**
 * @file
 * Directory SRAM sizing model (paper section 3.1).
 *
 * "Telegraphos I also uses a few megabits of directory SRAM ...  If the
 * ownership-counter-based protocol is implemented in future versions of
 * Telegraphos, the directory size will be significantly reduced."
 *
 * Two organizations are modelled:
 *
 *  - full map: every node keeps, for every locally-homed shared page, a
 *    full bit vector of the cluster (who has a copy) plus per-page
 *    state — what Telegraphos I provisions for;
 *
 *  - owner-based: only the *owner* of a page keeps the copy list
 *    (section 2.3.1: "only the owner of a page needs to hold and
 *    maintain the full list"), and non-owners keep just the owner id
 *    and the (bounded) counter cache — the reduction the paper
 *    predicts.
 */

#ifndef TELEGRAPHOS_HWCOST_DIRECTORY_COST_HPP
#define TELEGRAPHOS_HWCOST_DIRECTORY_COST_HPP

#include <cstdint>

#include "sim/config.hpp"

namespace tg::hwcost {

/** Parameters of the directory sizing question. */
struct DirectorySpec
{
    std::uint32_t nodes = 8;          ///< cluster size
    std::uint32_t sharedPages = 2048; ///< locally-homed shared pages/node
    std::uint32_t stateBitsPerPage = 4;
    std::uint32_t counterCacheEntries = 16;
    /** Bits per counter-cache entry: tag (word address) + count. */
    std::uint32_t counterEntryBits = 48 + 8;
};

/** Per-node directory SRAM, full-map organization (Kbits). */
double fullMapDirectoryKbits(const DirectorySpec &spec);

/** Per-node directory SRAM, owner-based organization (Kbits). */
double ownerBasedDirectoryKbits(const DirectorySpec &spec);

} // namespace tg::hwcost

#endif // TELEGRAPHOS_HWCOST_DIRECTORY_COST_HPP

/**
 * @file
 * Parametric hardware cost model of the Telegraphos I HIB.
 *
 * Reproduces Table 1 of the paper ("Gate Count for Telegraphos I HIB")
 * from the configured design parameters, so that sizing ablations (FIFO
 * depth, multicast list entries, counter coverage) update the table
 * consistently.  At the default configuration the rows match the paper
 * exactly.
 */

#ifndef TELEGRAPHOS_HWCOST_GATE_COUNT_HPP
#define TELEGRAPHOS_HWCOST_GATE_COUNT_HPP

#include <string>
#include <vector>

#include "sim/config.hpp"

namespace tg::hwcost {

/** One row of Table 1. */
struct BlockCost
{
    std::string block;
    std::uint32_t gates = 0;   ///< random-logic gate equivalent
    double sramKbits = 0;      ///< on-board SRAM, Kbits (0 = none)
    std::string notes;
    bool subtotal = false;     ///< a subtotal row
};

/** Compute the Table 1 rows for configuration @p cfg. */
std::vector<BlockCost> hibGateCount(const Config &cfg);

/** Render the table in the paper's layout. */
std::string renderGateCountTable(const std::vector<BlockCost> &rows);

} // namespace tg::hwcost

#endif // TELEGRAPHOS_HWCOST_GATE_COUNT_HPP

/**
 * @file
 * Hardware cost model of directory-based
 * alternatives (Table 1 comparison).
 */

#include "hwcost/directory_cost.hpp"

namespace tg::hwcost {

double
fullMapDirectoryKbits(const DirectorySpec &spec)
{
    // Telegraphos I provisions statically: every node carries directory
    // state (copy bit-vector + page state) for the *entire* shared
    // space of the cluster, because any page may end up shared with it
    // — this is the "few megabits of directory SRAM" of section 3.1.
    const double total_pages =
        double(spec.sharedPages) * double(spec.nodes);
    const double per_page = double(spec.nodes) + spec.stateBitsPerPage;
    return total_pages * per_page / 1024.0;
}

double
ownerBasedDirectoryKbits(const DirectorySpec &spec)
{
    // Owner side: copy bit-vector + state for owned pages only.
    const double owner_side =
        spec.sharedPages * (double(spec.nodes) + spec.stateBitsPerPage);
    // Non-owner side: just the owner id per remotely-mapped page plus
    // the bounded counter cache.
    const double owner_id_bits = 16.0; // node id field
    const double non_owner_side =
        spec.sharedPages * owner_id_bits +
        double(spec.counterCacheEntries) * spec.counterEntryBits;
    return (owner_side + non_owner_side) / 1024.0;
}

} // namespace tg::hwcost

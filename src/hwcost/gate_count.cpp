/**
 * @file
 * Gate-count cost model of the HIB units (Table 1).
 */

#include "hwcost/gate_count.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace tg::hwcost {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[128];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

} // namespace

std::vector<BlockCost>
hibGateCount(const Config &cfg)
{
    std::vector<BlockCost> rows;

    // --- message-related blocks -------------------------------------
    rows.push_back({"Central control", 1000, 0.5, "", false});
    rows.push_back({"Turbochannel interface", 550, 0,
                    "300 gates + 64 bits of registers", false});

    // Link FIFOs: one 128-bit slot per buffered packet.
    const double fifo_kbits =
        cfg.hibFifoPackets * (cfg.packetHeaderBytes * 8.0) / 1024.0;
    rows.push_back({"Incoming link intf.", 1000, fifo_kbits,
                    fmt("%g+%g Kb of synchr. (2-port) FIFO's",
                        fifo_kbits, fifo_kbits),
                    false});
    rows.push_back({"Outgoing link intf.", 750, fifo_kbits, "", false});

    BlockCost msg_subtotal{"Subtotal message related", 0, 0, "", true};
    for (const auto &r : rows) {
        msg_subtotal.gates += r.gates;
        msg_subtotal.sramKbits += r.sramKbits;
    }
    rows.push_back(msg_subtotal);

    // --- shared-memory related blocks --------------------------------
    // Three atomic operations at ~500 gate-equivalents of RMW datapath
    // and sequencing each.
    rows.push_back({"Atomic operations", 1500, 0, "", false});

    const double mcast_kbits = cfg.multicastEntries * 32.0 / 1024.0;
    rows.push_back({"Multicast (eager sharing)", 400, mcast_kbits,
                    fmt("%u K multicast list entries x 32 bits",
                        cfg.multicastEntries / 1024),
                    false});

    const double ctr_kbits =
        cfg.counterPages * (2.0 * cfg.pageCounterBits) / 1024.0;
    rows.push_back({"Page Access Counters", 800, ctr_kbits,
                    fmt("%u K pages x (%u+%u) bits", cfg.counterPages / 1024,
                        cfg.pageCounterBits, cfg.pageCounterBits),
                    false});

    rows.push_back({"Multiproc. Mem. (MPM)", 0, 0,
                    "16 MBytes = 128 Mbits of DRAM", false});

    BlockCost shm_subtotal{"Subtotal shared mem. rel.", 0, 0, "", true};
    for (std::size_t i = rows.size() - 4; i < rows.size(); ++i) {
        shm_subtotal.gates += rows[i].gates;
        shm_subtotal.sramKbits += rows[i].sramKbits;
    }
    rows.push_back(shm_subtotal);

    return rows;
}

std::string
renderGateCountTable(const std::vector<BlockCost> &rows)
{
    std::ostringstream os;
    os << fmt("%-28s %8s %10s  %s\n", "Block", "Logic", "SRAM", "Notes:");
    os << fmt("%-28s %8s %10s\n", "", "(gates)", "(Kbits)");
    for (const auto &r : rows) {
        char sram[32] = "";
        if (r.sramKbits > 0) {
            if (r.sramKbits == static_cast<int>(r.sramKbits))
                std::snprintf(sram, sizeof(sram), "%d",
                              static_cast<int>(r.sramKbits));
            else
                std::snprintf(sram, sizeof(sram), "%.1f", r.sramKbits);
        }
        os << fmt("%-28s %8u %10s  %s\n", r.block.c_str(), r.gates, sram,
                  r.notes.c_str());
        if (r.subtotal)
            os << "\n";
    }
    return os.str();
}

} // namespace tg::hwcost

/**
 * @file
 * Simulator self-benchmark (google-benchmark driven).
 *
 * Not a paper experiment: measures the *wall-clock* throughput of the
 * reproduction itself — event-queue rate, remote operations simulated
 * per second, end-to-end cluster construction — so regressions in the
 * model's own performance are visible.  Reports simulated-time /
 * wall-time as a custom counter.
 */

#include <benchmark/benchmark.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace tg;

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10'000; ++i)
            q.schedule(Tick(i % 97), [&fired] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueue);

void
BM_ClusterConstruction(benchmark::State &state)
{
    const std::size_t nodes = std::size_t(state.range(0));
    for (auto _ : state) {
        ClusterSpec spec;
        spec.topology.nodes = nodes;
        Cluster cluster(spec);
        benchmark::DoNotOptimize(cluster.numNodes());
    }
}
BENCHMARK(BM_ClusterConstruction)->Arg(2)->Arg(8)->Arg(16);

void
BM_RemoteWrites(benchmark::State &state)
{
    const int ops = int(state.range(0));
    Tick simulated = 0;
    for (auto _ : state) {
        ClusterSpec spec;
        spec.topology.nodes = 2;
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("s", 8192, 0);
        cluster.spawn(1, [&, ops](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < ops; ++i)
                co_await ctx.write(seg.word(i % 64), Word(i));
            co_await ctx.fence();
        });
        simulated += cluster.run(2'000'000'000'000ULL);
    }
    state.SetItemsProcessed(state.iterations() * ops);
    state.counters["sim_us_per_s"] = benchmark::Counter(
        toUs(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemoteWrites)->Arg(1000)->Arg(10000);

void
BM_CoherentWrites(benchmark::State &state)
{
    const int ops = int(state.range(0));
    for (auto _ : state) {
        ClusterSpec spec;
        spec.topology.nodes = 3;
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("s", 8192, 0);
        seg.replicate(1, coherence::ProtocolKind::OwnerCounter);
        seg.replicate(2, coherence::ProtocolKind::OwnerCounter);
        cluster.spawn(1, [&, ops](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < ops; ++i)
                co_await ctx.write(seg.word(i % 64), Word(i));
            co_await ctx.fence();
        });
        cluster.run(2'000'000'000'000ULL);
    }
    state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_CoherentWrites)->Arg(1000);

void
BM_AtomicRoundTrips(benchmark::State &state)
{
    for (auto _ : state) {
        ClusterSpec spec;
        spec.topology.nodes = 2;
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("s", 8192, 0);
        cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 200; ++i)
                co_await ctx.fetchAdd(seg.word(0), 1);
        });
        cluster.run(2'000'000'000'000ULL);
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_AtomicRoundTrips);

} // namespace

BENCHMARK_MAIN();

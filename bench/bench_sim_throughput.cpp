/**
 * @file
 * Simulator self-benchmark (google-benchmark driven).
 *
 * Not a paper experiment: measures the *wall-clock* throughput of the
 * reproduction itself — event-queue rate, remote operations simulated
 * per second, end-to-end cluster construction — so regressions in the
 * model's own performance are visible.  Reports simulated-time /
 * wall-time as a custom counter.
 */

#include <benchmark/benchmark.h>

#include <cstddef>

#include <memory>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "net/fabric_sim.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/system.hpp"

namespace {

using namespace tg;

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10'000; ++i)
            q.schedule(Tick(i % 97), [&fired] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueue);

#ifdef TG_REFERENCE_HEAP
/** The pre-ladder binary heap, same workload shape as BM_EventQueue, so
 *  every run reports the speedup ratio alongside the new engine. */
void
BM_EventQueueReference(benchmark::State &state)
{
    for (auto _ : state) {
        ReferenceEventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10'000; ++i)
            q.schedule(Tick(i % 97), [&fired] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueReference);
#endif

/** Steady-state schedule->fire cycle on a warm queue: buckets and
 *  closure storage recycled, zero allocations per event (the case the
 *  simulator actually spends its life in). */
void
BM_EventQueueSteadyState(benchmark::State &state)
{
    EventQueue q;
    std::uint64_t fired = 0;
    struct Pump
    {
        EventQueue *q;
        std::uint64_t *fired;
        void
        operator()() const
        {
            ++*fired;
            q->schedule(7, Pump{q, fired});
        }
    };
    q.schedule(1, Pump{&q, &fired});
    q.run(5'000); // warm every wheel bucket
    for (auto _ : state) {
        q.run(1'000);
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_EventQueueSteadyState);

/** Oversized captures (a closure latching packet-sized state) take the
 *  pooled path; after warm-up the pool recycles blocks. */
void
BM_EventQueueHeavyClosure(benchmark::State &state)
{
    struct Payload
    {
        std::byte raw[Event::kInlineBytes + 32];
    };
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10'000; ++i) {
            Payload p{};
            p.raw[0] = std::byte(i);
            q.schedule(Tick(i % 97), [p, &fired] {
                fired += std::size_t(p.raw[0]);
            });
        }
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueHeavyClosure);

/** Mixed near/far-future delays: half the events land in the wheel,
 *  half go through the overflow ladder and spill back as the window
 *  advances (retry-timeout and page-copy territory). */
void
BM_EventQueueLadder(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10'000; ++i) {
            const Tick d = (i & 1) ? Tick(i % 97)
                                   : Tick(20'000 + (i * 131) % 50'000);
            q.schedule(d, [&fired] { ++fired; });
        }
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueLadder);

void
BM_ClusterConstruction(benchmark::State &state)
{
    const std::size_t nodes = std::size_t(state.range(0));
    for (auto _ : state) {
        ClusterSpec spec = ClusterSpec::star(nodes);
        Cluster cluster(spec);
        benchmark::DoNotOptimize(cluster.numNodes());
    }
}
BENCHMARK(BM_ClusterConstruction)->Arg(2)->Arg(8)->Arg(16);

void
BM_RemoteWrites(benchmark::State &state)
{
    const int ops = int(state.range(0));
    Tick simulated = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        ClusterSpec spec = ClusterSpec::star(2);
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("s", 8192, 0);
        cluster.spawn(1, [&, ops](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < ops; ++i)
                co_await ctx.write(seg.word(i % 64), Word(i));
            co_await ctx.fence();
        });
        simulated += cluster.run(2'000'000'000'000ULL);
        events += cluster.system().events().executed();
    }
    state.SetItemsProcessed(state.iterations() * ops);
    state.counters["sim_us_per_s"] = benchmark::Counter(
        toUs(simulated), benchmark::Counter::kIsRate);
    state.counters["events_per_s"] = benchmark::Counter(
        double(events), benchmark::Counter::kIsRate);
    // Simulated nanoseconds advanced per microsecond of wall time.
    state.counters["sim_ns_per_wall_us"] = benchmark::Counter(
        double(simulated) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemoteWrites)->Arg(1000)->Arg(10000);

void
BM_CoherentWrites(benchmark::State &state)
{
    const int ops = int(state.range(0));
    Tick simulated = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        ClusterSpec spec = ClusterSpec::star(3);
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("s", 8192, 0);
        seg.replicate(1, coherence::ProtocolKind::OwnerCounter);
        seg.replicate(2, coherence::ProtocolKind::OwnerCounter);
        cluster.spawn(1, [&, ops](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < ops; ++i)
                co_await ctx.write(seg.word(i % 64), Word(i));
            co_await ctx.fence();
        });
        simulated += cluster.run(2'000'000'000'000ULL);
        events += cluster.system().events().executed();
    }
    state.SetItemsProcessed(state.iterations() * ops);
    state.counters["events_per_s"] = benchmark::Counter(
        double(events), benchmark::Counter::kIsRate);
    state.counters["sim_ns_per_wall_us"] = benchmark::Counter(
        double(simulated) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoherentWrites)->Arg(1000);

void
BM_AtomicRoundTrips(benchmark::State &state)
{
    Tick simulated = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        ClusterSpec spec = ClusterSpec::star(2);
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("s", 8192, 0);
        cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 200; ++i)
                co_await ctx.fetchAdd(seg.word(0), 1);
        });
        simulated += cluster.run(2'000'000'000'000ULL);
        events += cluster.system().events().executed();
    }
    state.SetItemsProcessed(state.iterations() * 200);
    state.counters["events_per_s"] = benchmark::Counter(
        double(events), benchmark::Counter::kIsRate);
    state.counters["sim_ns_per_wall_us"] = benchmark::Counter(
        double(simulated) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AtomicRoundTrips);

// ---------------------------------------------------------------------
// Packet-path microbenchmarks
//
// Drive uniform traffic through the *real* network datapath — HIB-style
// endpoint FIFOs, Channel serialization, Switch cut-through, BoundedQueue
// credit flow — with no coroutines or coherence on top, so the gated
// events_per_s isolates the per-packet cost of the queue/link/switch
// machinery itself (the subject of the arena / SoA / credit-batching
// work).  Closed-loop injection: every node tops its egress FIFO up as
// soon as credits free, so the fabric runs saturated.
// ---------------------------------------------------------------------

/** Minimal network endpoint: bounded egress/ingress FIFOs and a sink
 *  that pops arrivals immediately. */
class PathEndpoint final : public net::NodeEndpoint
{
  public:
    PathEndpoint(System &sys, std::size_t cap)
        : _eg(sys.arena(), cap), _ig(sys.arena(), cap)
    {
    }

    net::BoundedQueue &egress() override { return _eg; }
    net::BoundedQueue &ingress() override { return _ig; }

  private:
    net::BoundedQueue _eg;
    net::BoundedQueue _ig;
};

void
runPacketPath(benchmark::State &state, const ClusterSpec &base,
              int packets_per_node)
{
    ClusterSpec spec = base;
    spec.seed(7)
        // Scale-study link speed (see the sharded-fabric tier below).
        .tune([](Config &c) { c.linkBytesPerTick = 1.0; });

    const std::size_t nodes = spec.topology().nodes;
    const std::uint64_t expect =
        std::uint64_t(nodes) * std::uint64_t(packets_per_node);

    std::uint64_t events = 0;
    std::uint64_t delivered = 0;
    Tick simulated = 0;
    for (auto _ : state) {
        System sys(spec.config);
        net::Network fabric(sys, "net", spec.topology());

        std::vector<std::unique_ptr<PathEndpoint>> eps;
        std::vector<int> left(nodes, packets_per_node);
        std::uint64_t got = 0;
        eps.reserve(nodes);
        for (std::size_t i = 0; i < nodes; ++i) {
            eps.push_back(std::make_unique<PathEndpoint>(
                sys, spec.config.hibFifoPackets));
            fabric.attach(NodeId(i), *eps[i]);
        }
        for (std::size_t i = 0; i < nodes; ++i) {
            PathEndpoint &ep = *eps[i];
            net::BoundedQueue &eg = ep.egress();
            net::BoundedQueue &ig = ep.ingress();
            ig.onData([&ig, &got] {
                while (!ig.empty()) {
                    (void)ig.pop();
                    ++got;
                }
            });
            auto inject = [&eg, &left, i, nodes] {
                while (left[i] > 0 && !eg.full()) {
                    const int k = left[i]--;
                    net::Packet p;
                    p.type = net::PacketType::WriteReq;
                    p.src = NodeId(i);
                    // Uniform spread over the other nodes.
                    p.dst = NodeId((i + 1 + std::size_t(k) % (nodes - 1)) %
                                   nodes);
                    p.seq = std::uint64_t(k);
                    p.payloadBytes = 24;
                    eg.push(std::move(p));
                }
            };
            eg.onSpace(inject);
            sys.events().schedule(0, inject);
        }

        sys.events().run(2'000'000'000'000ULL);
        events += sys.events().executed();
        simulated += sys.now();
        delivered += got;
        if (got != expect)
            state.SkipWithError("packet-path traffic did not drain");
    }
    state.SetItemsProcessed(std::int64_t(delivered));
    state.counters["events_per_s"] = benchmark::Counter(
        double(events), benchmark::Counter::kIsRate);
    state.counters["packets_per_s"] = benchmark::Counter(
        double(delivered), benchmark::Counter::kIsRate);
    state.counters["sim_ns_per_wall_us"] = benchmark::Counter(
        double(simulated) * 1e-6, benchmark::Counter::kIsRate);
}

void
BM_PacketPathTorus2D(benchmark::State &state)
{
    runPacketPath(state, ClusterSpec::torus(8, 8, 4), 50); // 256 nodes
}
BENCHMARK(BM_PacketPathTorus2D);

void
BM_PacketPathFatTree(benchmark::State &state)
{
    runPacketPath(state, ClusterSpec::fatTree(256, 4, 8), 50); // 64 leaves
}
BENCHMARK(BM_PacketPathFatTree);

// ---------------------------------------------------------------------
// Sharded PDES fabric scaling (DESIGN.md section 13.4)
//
// One benchmark per fabric, swept over 1/2/4/8 shards.  The gated
// `events_per_s` counter is the *aggregate* rate: events executed
// divided by the engine's critical-path (parallel-makespan) seconds —
// the sum over epochs of the slowest shard's execute+drain slice.  At
// one shard this equals the plain busy rate; at N shards it is the
// throughput a fully parallel execution converges to, measured
// machine-independently (CI runners and the dev box disagree on core
// counts, the per-slice self-measurement does not).  `wall_events_per_s`
// reports the conventional wall rate alongside.
// ---------------------------------------------------------------------

void
runShardedFabric(benchmark::State &state, const ClusterSpec &base)
{
    const std::uint32_t nShards = std::uint32_t(state.range(0));
    ClusterSpec spec = base;
    spec.shards(nShards)
        .seed(99)
        // Scale-study link speed (APEnet-class, ~1 GB/s) instead of the
        // paper's 35 MB/s ribbon cable: serialization stays a realistic
        // 40 ticks and the event mix is hop-dominated.
        .tune([](Config &c) { c.linkBytesPerTick = 1.0; });

    net::FabricWorkload wl;
    wl.kind = net::FabricWorkload::Kind::Uniform;
    wl.packetsPerNode = 200;
    wl.injectGap = 250;
    wl.payloadBytes = 24;

    std::uint64_t events = 0;
    std::uint64_t delivered = 0;
    double criticalSec = 0;
    double busySec = 0;
    for (auto _ : state) {
        net::FabricSim sim(spec.topology(), spec.config, wl);
        events += sim.run();
        delivered += sim.delivered();
        criticalSec += sim.criticalPathSeconds();
        busySec += sim.busySeconds();
        if (!sim.auditQuiescent())
            state.SkipWithError("fabric ledger not quiescent");
    }
    state.SetItemsProcessed(std::int64_t(delivered));
    state.counters["events_per_s"] =
        benchmark::Counter(double(events) / criticalSec);
    state.counters["wall_events_per_s"] = benchmark::Counter(
        double(events), benchmark::Counter::kIsRate);
    state.counters["busy_over_critical"] =
        benchmark::Counter(busySec / criticalSec);
}

void
BM_ShardedFabricTorus2D(benchmark::State &state)
{
    runShardedFabric(state, ClusterSpec::torus(8, 8, 4)); // 256 nodes
}
BENCHMARK(BM_ShardedFabricTorus2D)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_ShardedFabricTorus3D(benchmark::State &state)
{
    runShardedFabric(state, ClusterSpec::torus3d(4, 4, 4, 4)); // 256 nodes
}
BENCHMARK(BM_ShardedFabricTorus3D)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_ShardedFabricFatTree(benchmark::State &state)
{
    runShardedFabric(state, ClusterSpec::fatTree(256, 4, 8)); // 64 leaves
}
BENCHMARK(BM_ShardedFabricFatTree)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Experiment COLL: host-driven vs NIC-offloaded collectives.
 *
 * The same Communicator API runs on two backends (DESIGN.md section
 * 15): Host composes the paper's primitives in software (eager-update
 * broadcast pages, remote fetch&add reductions, sense-reversing
 * barriers — the CPU drives and polls every step), Nic writes one
 * descriptor and blocks on a single register read while the HIB
 * collective engine runs the combine/fan-out tree NIC-to-NIC.
 *
 * This bench sweeps barrier, sum-reduce and an 8-word broadcast over a
 * whole-cluster communicator at 64/256/1024 nodes on the 2D-torus,
 * 3D-torus and fat-tree fabrics, reporting the mean per-member
 * operation latency from the lifecycle tracer (CpuIssue ->
 * Completion).  Like bench_n1_scaling, the fat-tree stops at 256
 * nodes: at 4 nodes/switch the two-level fabric's spines become
 * 256-port switches, and their per-hop VOQ state makes the simulation
 * cost quadratic while the fabric itself is already bisection-bound.
 *
 * Shape checks (the offload claim itself):
 *  - at every tier >= 256 nodes the NIC backend beats the host backend
 *    on barrier and reduce on every fabric — the host path serializes
 *    O(N) atomics and polls at one home node, the engine combines up a
 *    tree;
 *  - the NIC latency grows like the tree depth, not the member count:
 *    nic(1024) <= 6 x nic(64) for barrier and reduce per fabric;
 *  - two same-seed runs hash identically per backend (determinism).
 *
 * Flags: --nodes=N   run only the N-node tier (CI smoke uses 64;
 *                    cross-tier shape checks then skip)
 *        --json[=p]  write the tg-bench-v1 document
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"

using namespace tg;

namespace {

constexpr int kIters = 4;             ///< timed rounds per operation
constexpr std::size_t kBcastWords = 8;

struct CollTimes
{
    double barrierUs = 0; ///< mean per-member barrier lifetime
    double reduceUs = 0;  ///< mean per-member rooted-reduce lifetime
    double bcastUs = 0;   ///< mean per-member 8-word broadcast lifetime
    bool drained = false;
    bool valuesOk = false; ///< every Result ok, every value correct
    std::uint64_t traceHash = 0;
};

double
meanUs(const std::vector<Tick> &lifetimes)
{
    if (lifetimes.empty())
        return 0;
    double sum = 0;
    for (const Tick t : lifetimes)
        sum += toUs(t);
    return sum / double(lifetimes.size());
}

CollTimes
run(net::TopologyKind kind, std::size_t nodes, CollectiveBackend backend)
{
    const ClusterSpec spec = ClusterSpec::forKind(kind, nodes, 4)
                                 .trace(true)
                                 .seed(11)
                                 .collectives(backend);
    Cluster cluster(spec);
    const std::size_t n_nodes = cluster.numNodes();

    std::vector<NodeId> members;
    for (NodeId n = 0; n < NodeId(n_nodes); ++n)
        members.push_back(n);
    Communicator &comm =
        cluster.communicator("all", members, kBcastWords);

    // Every node contributes rank+1: the reduce must see N(N+1)/2.
    const Word expect = Word(n_nodes) * Word(n_nodes + 1) / 2;
    bool ok = true;
    for (NodeId n = 0; n < NodeId(n_nodes); ++n) {
        cluster.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            for (int it = 0; it < kIters; ++it) {
                const Result<void> b = co_await comm.barrier(ctx);
                if (!b.ok())
                    ok = false;
            }
            for (int it = 0; it < kIters; ++it) {
                const Result<ReduceOut> r =
                    co_await comm.reduceSum(ctx, Word(n) + 1, /*root=*/0);
                if (!r.ok() ||
                    (r.value().atRoot && r.value().value != expect))
                    ok = false;
            }
            for (int it = 0; it < kIters; ++it) {
                std::vector<Word> io;
                if (n == 0) {
                    for (std::size_t w = 0; w < kBcastWords; ++w)
                        io.push_back(Word(it) * 100 + w);
                }
                const Result<void> r =
                    co_await comm.broadcast(ctx, io, /*root=*/0);
                if (!r.ok() || io.size() != kBcastWords)
                    ok = false;
            }
        });
    }
    cluster.run(500'000'000'000'000ULL);

    CollTimes t;
    t.drained = cluster.allDone();
    t.valuesOk = ok;
    t.barrierUs =
        meanUs(cluster.tracer().opLifetimes(trace::OpKind::CollBarrier));
    t.reduceUs =
        meanUs(cluster.tracer().opLifetimes(trace::OpKind::CollReduce));
    t.bcastUs =
        meanUs(cluster.tracer().opLifetimes(trace::OpKind::CollBcast));
    t.traceHash = cluster.traceHash();
    return t;
}

const char *
backendName(CollectiveBackend b)
{
    return b == CollectiveBackend::Host ? "host" : "nic";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_collectives", argc, argv);
    std::size_t only_nodes = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--nodes=", 8) == 0)
            only_nodes = std::strtoul(argv[i] + 8, nullptr, 10);
    }

    std::printf("=== COLL: host vs NIC-offloaded collectives ===\n");
    std::printf("%d rounds/op, whole-cluster communicator, "
                "%zu-word broadcast\n\n",
                kIters, kBcastWords);

    const std::vector<std::size_t> sizes = {64, 256, 1024};
    const std::vector<std::pair<const char *, net::TopologyKind>> fabrics = {
        {"torus2d", net::TopologyKind::Torus2D},
        {"torus3d", net::TopologyKind::Torus3D},
        {"fattree", net::TopologyKind::FatTree},
    };
    const CollectiveBackend backends[] = {CollectiveBackend::Host,
                                          CollectiveBackend::Nic};

    // us[op][fabric][nodes][backend] for the shape checks.
    std::map<std::string,
             std::map<std::string, std::map<std::size_t,
                                            std::map<std::string, double>>>>
        us;

    ResultTable table({"topology", "nodes", "backend", "barrier us",
                       "reduce us", "bcast us", "drained", "values"});
    int failures = 0;
    for (const auto &[fname, kind] : fabrics) {
        for (const std::size_t nodes : sizes) {
            if (only_nodes && nodes != only_nodes)
                continue;
            // Two-level fat-tree stops at 256 (see the header comment).
            if (kind == net::TopologyKind::FatTree && nodes > 256)
                continue;
            for (const CollectiveBackend b : backends) {
                std::fprintf(stderr, "running %s n%zu %s...\n", fname,
                             nodes, backendName(b));
                const CollTimes t = run(kind, nodes, b);
                const std::string bname = backendName(b);
                table.addRow({fname, std::to_string(nodes), bname,
                              ResultTable::num(t.barrierUs, 2),
                              ResultTable::num(t.reduceUs, 2),
                              ResultTable::num(t.bcastUs, 2),
                              t.drained ? "yes" : "NO",
                              t.valuesOk ? "ok" : "BAD"});
                if (!t.drained || !t.valuesOk)
                    ++failures;
                us["barrier"][fname][nodes][bname] = t.barrierUs;
                us["reduce"][fname][nodes][bname] = t.reduceUs;
                us["bcast"][fname][nodes][bname] = t.bcastUs;
                const std::string tag =
                    std::string(fname) + ".n" + std::to_string(nodes);
                report.metric(tag + ".barrier." + bname + "_us",
                              t.barrierUs, "us");
                report.metric(tag + ".reduce." + bname + "_us",
                              t.reduceUs, "us");
                report.metric(tag + ".bcast." + bname + "_us", t.bcastUs,
                              "us");
            }
        }
    }
    table.print();
    std::printf("\n");

    // Offload claim: from 256 nodes up the descriptor path must beat
    // the software path on every fabric for barrier and reduce.
    int checks = 0;
    for (const std::string &op : {std::string("barrier"),
                                 std::string("reduce")}) {
        for (const auto &[fname, kind] : fabrics) {
            for (const std::size_t nodes : sizes) {
                if (nodes < 256 || (only_nodes && nodes != only_nodes))
                    continue;
                if (kind == net::TopologyKind::FatTree && nodes > 256)
                    continue;
                const double host = us[op][fname][nodes]["host"];
                const double nic = us[op][fname][nodes]["nic"];
                const bool pass = nic < host && nic > 0;
                ++checks;
                failures += pass ? 0 : 1;
                std::printf("check %-7s %-8s @%4zu: nic %9.2f < host "
                            "%9.2f us  (%.1fx)  [%s]\n",
                            op.c_str(), fname, nodes, nic, host,
                            nic > 0 ? host / nic : 0.0,
                            pass ? "PASS" : "FAIL");
            }
        }
    }

    // Tree-depth scaling: a 16x member count may cost the NIC backend
    // at most ~6x latency (log-like, not linear).  Only the tori reach
    // the 1024-node tier.
    if (!only_nodes) {
        for (const std::string &op : {std::string("barrier"),
                                     std::string("reduce")}) {
            for (const auto &[fname, kind] : fabrics) {
                if (kind == net::TopologyKind::FatTree)
                    continue;
                const double small = us[op][fname][64]["nic"];
                const double big = us[op][fname][1024]["nic"];
                const bool pass = small > 0 && big <= 6.0 * small;
                ++checks;
                failures += pass ? 0 : 1;
                std::printf("check %-7s %-8s nic 64->1024: %.2f -> %.2f "
                            "us (%.2fx <= 6x)  [%s]\n",
                            op.c_str(), fname, small, big,
                            small > 0 ? big / small : 0.0,
                            pass ? "PASS" : "FAIL");
            }
        }
    }

    // Determinism: same seed, same backend -> identical trace hash.
    {
        const std::size_t nodes = only_nodes ? only_nodes : 64;
        for (const CollectiveBackend b : backends) {
            const CollTimes a = run(net::TopologyKind::Torus2D, nodes, b);
            const CollTimes c = run(net::TopologyKind::Torus2D, nodes, b);
            const bool pass = a.traceHash == c.traceHash &&
                              a.traceHash != 0;
            ++checks;
            failures += pass ? 0 : 1;
            std::printf("check hash    %-4s same-seed @%zu: %016llx %s "
                        "%016llx  [%s]\n",
                        backendName(b), nodes,
                        (unsigned long long)a.traceHash,
                        pass ? "==" : "!=",
                        (unsigned long long)c.traceHash,
                        pass ? "PASS" : "FAIL");
        }
    }

    std::printf("\nshape check: %d/%d collective assertions hold\n",
                checks - failures, checks);
    report.write();
    return failures ? 1 : 0;
}

/**
 * @file
 * Experiment N1: interconnect scaling across topologies.
 *
 * The paper argues Telegraphos networks scale by adding switches
 * (section 2.2): this bench measures how far each fabric actually
 * carries that claim.  Uniform-random, transpose (bisection-crossing)
 * and hotspot traffic run over ring, 2D-torus and fat-tree fabrics at
 * 16/64/144/256 nodes (plus a small star baseline), reporting
 * saturation goodput, p50/p99 remote-write latency and the mean
 * switch-hop count from the packet-lifecycle tracer.
 *
 * Shape check (the scaling claim itself): on bisection-limited traffic
 * at >= 64 nodes the ring saturates below both the torus and the
 * fat-tree — more switches only help when the wiring adds bisection.
 *
 * The 3D torus additionally sweeps 512 and 1024 nodes (the 2D fabrics
 * stop at 256: their diameter, not the switch count, is the limit).
 *
 * Faulted mode (self-healing fabrics, DESIGN.md "Routing epochs"): the
 * 3D torus reruns transpose traffic with ~2% of its trunks — all taken
 * from the reference bisection cut — administratively down mid-run.
 * The routing epochs must hold goodput at >= 80% of the
 * bisection-predicted value (baseline x surviving/full cut crossings),
 * and two same-seed faulted runs must produce identical trace hashes.
 *
 * Flags: --nodes=N   run only the N-node tier (CI smoke uses 64)
 *        --json[=p]  write the tg-bench-v1 document (with the topology
 *                    object and per-hop breakdown of the torus run)
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/traffic.hpp"

using namespace tg;

namespace {

struct RunResult
{
    double goodputMBs = 0; ///< delivered write payload over runtime
    double p50WriteUs = 0;
    double p99WriteUs = 0;
    double meanHops = 0;
    double runtimeUs = 0;
    Tick runtimeTicks = 0;
    bool drained = false;
    std::uint64_t traceHash = 0;
    std::uint64_t wireFailures = 0;
    std::uint64_t routingEpochs = 0;
    std::uint64_t reroutes = 0;
};

constexpr int kOpsPerNode = 60;
constexpr double kReadFraction = 0.1;

ClusterSpec
specFor(net::TopologyKind kind, std::size_t nodes)
{
    return ClusterSpec::forKind(kind, nodes, 4).trace(true).seed(11);
}

RunResult
run(const ClusterSpec &spec, const std::string &pattern,
    trace::Breakdown *bd_out = nullptr)
{
    Cluster cluster(spec);
    const std::size_t nodes = cluster.numNodes();

    std::vector<Segment *> segs;
    for (NodeId n = 0; n < NodeId(nodes); ++n)
        segs.push_back(
            &cluster.allocShared("s" + std::to_string(n), 8192, n));

    workload::TrafficConfig cfg;
    cfg.ops = kOpsPerNode;
    cfg.readFraction = kReadFraction;
    cfg.gap = 0; // back-to-back: measures the fabric's saturation point
    for (NodeId n = 0; n < NodeId(nodes); ++n) {
        if (pattern == "transpose")
            cluster.spawn(n, workload::transposeTraffic(segs, cfg));
        else if (pattern == "hotspot")
            cluster.spawn(n, workload::hotspotTraffic(segs, cfg, 0, 0.25));
        else
            cluster.spawn(n, workload::randomTraffic(segs, cfg));
    }

    const Tick end = cluster.run(500'000'000'000'000ULL);

    RunResult r;
    r.drained = cluster.allDone();
    r.runtimeUs = toUs(end);
    r.runtimeTicks = end;
    const double write_bytes =
        double(nodes) * kOpsPerNode * (1.0 - kReadFraction) * 8.0;
    r.goodputMBs = write_bytes / r.runtimeUs; // B/us == MB/s

    const std::vector<Tick> lat =
        cluster.tracer().opLifetimes(trace::OpKind::RemoteWrite);
    if (!lat.empty()) {
        r.p50WriteUs = toUs(lat[lat.size() / 2]);
        r.p99WriteUs = toUs(lat[(lat.size() - 1) * 99 / 100]);
    }
    const trace::Breakdown bd = cluster.latencyBreakdown();
    if (const trace::OpBreakdown *w = bd.of(trace::OpKind::RemoteWrite))
        r.meanHops = w->meanHops;
    if (bd_out)
        *bd_out = bd;
    r.traceHash = cluster.traceHash();
    r.wireFailures = cluster.network().wireFailures();
    r.routingEpochs = cluster.network().routingEpochs();
    r.reroutes = cluster.network().reroutesApplied();
    return r;
}

// ---------------------------------------------------------------------
// Faulted mode: trunks of the reference bisection cut go down mid-run
// ---------------------------------------------------------------------

/** Undirected 3D-torus trunks crossing the reference bisection cut (the
 *  two planes perpendicular to the longest dimension that split it in
 *  half), in trunk-table order.  There are bisectionWidth() of them. */
std::vector<net::TopologyModel::Trunk>
cutTrunks(const net::TopologySpec &t)
{
    const std::size_t dims[3] = {t.torusX, t.torusY, t.torusZ};
    std::size_t longest = 0;
    for (std::size_t d = 1; d < 3; ++d)
        if (dims[d] > dims[longest])
            longest = d;
    const std::size_t g = dims[longest];
    const std::size_t h = g / 2;

    auto coord = [&](std::size_t sw, std::size_t d) {
        if (d == 0)
            return sw % t.torusX;
        if (d == 1)
            return (sw / t.torusX) % t.torusY;
        return sw / (t.torusX * t.torusY);
    };
    std::vector<net::TopologyModel::Trunk> out;
    for (const auto &tr : t.model().trunks(t)) {
        bool along = true;
        for (std::size_t d = 0; d < 3; ++d)
            if (d != longest && coord(tr.swA, d) != coord(tr.swB, d))
                along = false;
        if (!along)
            continue;
        const std::size_t a = coord(tr.swA, longest);
        const std::size_t b = coord(tr.swB, longest);
        const std::size_t lo = a < b ? a : b, hi = a < b ? b : a;
        if ((lo == h - 1 && hi == h) || (lo == 0 && hi == g - 1))
            out.push_back(tr);
    }
    return out;
}

struct FaultedTier
{
    std::size_t nodes = 0;
    std::size_t downed = 0;    ///< undirected cut trunks taken down
    std::size_t bisection = 0; ///< full cut width (undirected trunks)
    double baseMBs = 0;        ///< reliable links, no outage
    double faultMBs = 0;       ///< outage + routing epochs, loss-corrected
    double predictedMBs = 0;   ///< baseMBs x surviving/full cut
    std::uint64_t epochs = 0, flips = 0, failures = 0;
    bool hashStable = false; ///< two same-seed faulted runs hashed equal
    bool drained = false;
};

FaultedTier
runFaulted(std::size_t nodes, double down_fraction)
{
    FaultedTier ft;
    ft.nodes = nodes;

    const net::TopologySpec topo =
        specFor(net::TopologyKind::Torus3D, nodes).topology();
    const auto cut = cutTrunks(topo);
    const std::size_t total = topo.model().trunks(topo).size();
    ft.bisection = topo.bisectionWidth();
    ft.downed = std::size_t(down_fraction * double(total) + 0.5);
    if (ft.downed < 1)
        ft.downed = 1;
    if (ft.downed > cut.size() / 2)
        ft.downed = cut.size() / 2; // keep a majority of the cut alive

    // Spread the outage across distinct rings: the cut table lists both
    // crossings of a ring adjacently, so stride 2 downs at most one
    // crossing per ring and every ring keeps an in-dimension path.
    std::vector<net::TopologyModel::Trunk> downed;
    for (std::size_t i = 0; i < ft.downed; ++i)
        downed.push_back(cut[(2 * i) % cut.size()]);

    // Compressed reliability timings so the fail-fast flush (and with it
    // the routing-epoch flip) lands early in the outage.
    auto tuned = [&](auto inject) {
        return specFor(net::TopologyKind::Torus3D, nodes)
            .tune([&](Config &c) {
                c.fault.retryTimeout = 5'000;
                c.fault.linkDownDeadline = 10'000;
                inject(c.fault);
            });
    };

    // Baseline: the reliability protocol engaged on every link (same
    // per-hop cost as the faulted run) but the one scheduled window
    // matches no channel, so nothing ever goes down.
    const RunResult base =
        run(tuned([](FaultSpec &f) { f.downLink("no-such-link*", 1, 2); }),
            "transpose");
    ft.baseMBs = base.goodputMBs;

    // Down the first k cut trunks from 5% into the run until just past
    // the baseline runtime: the outage covers effectively the whole
    // (longer) faulted run, so the bisection prediction applies to it.
    const Tick base_ticks = base.runtimeTicks;
    const ClusterSpec fspec = tuned([&](FaultSpec &f) {
        for (const auto &tr : downed)
            f.downTrunk(tr.swA, tr.swB, base_ticks / 20, base_ticks);
    });

    const RunResult a = run(fspec, "transpose");
    const RunResult b = run(fspec, "transpose");
    ft.hashStable = a.traceHash == b.traceHash && a.traceHash != 0;
    ft.drained = a.drained && b.drained;
    ft.epochs = a.routingEpochs;
    ft.flips = a.reroutes;
    ft.failures = a.wireFailures;

    // Goodput corrected for visibly-failed packets (the fail-fast burst
    // between outage start and the epoch flip): failed payload is not
    // "good" throughput.
    ft.faultMBs =
        a.goodputMBs - double(a.wireFailures) * 8.0 / a.runtimeUs;
    if (ft.faultMBs < 0)
        ft.faultMBs = 0;
    ft.predictedMBs = ft.baseMBs *
                      double(ft.bisection - ft.downed) /
                      double(ft.bisection);
    return ft;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_n1_scaling", argc, argv);
    std::size_t only_nodes = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--nodes=", 8) == 0)
            only_nodes = std::strtoul(argv[i] + 8, nullptr, 10);
    }

    std::printf("=== N1: topology scaling (section 2.2) ===\n");
    std::printf("%d ops/node back-to-back, %.0f%% reads, 4 nodes/switch\n\n",
                kOpsPerNode, kReadFraction * 100);

    // 512/1024 run on the 3D torus only: at those sizes the 2D fabrics
    // are diameter-bound and add nothing to the scaling story.
    const std::vector<std::size_t> sizes = {16, 64, 144, 256, 512, 1024};
    const std::vector<std::pair<const char *, net::TopologyKind>> fabrics = {
        {"ring", net::TopologyKind::Ring},
        {"torus2d", net::TopologyKind::Torus2D},
        {"torus3d", net::TopologyKind::Torus3D},
        {"fattree", net::TopologyKind::FatTree},
    };
    const std::vector<std::string> patterns = {"uniform", "transpose",
                                              "hotspot"};

    // goodput[pattern][fabric][size] for the scaling assertions.
    std::map<std::string, std::map<std::string, std::map<std::size_t, double>>>
        goodput;

    ResultTable table({"pattern", "topology", "nodes", "goodput MB/s",
                       "p50 wr us", "p99 wr us", "hops/wr", "drained"});

    // Star baseline: one crossbar, only sensible small.
    if (!only_nodes || only_nodes == 16) {
        for (const std::string &pattern : patterns) {
            const RunResult r =
                run(specFor(net::TopologyKind::Star, 16), pattern);
            table.addRow({pattern, "star", "16",
                          ResultTable::num(r.goodputMBs, 3),
                          ResultTable::num(r.p50WriteUs, 2),
                          ResultTable::num(r.p99WriteUs, 2),
                          ResultTable::num(r.meanHops, 2),
                          r.drained ? "yes" : "NO"});
            report.metric(pattern + ".star.16.goodput_mbs", r.goodputMBs,
                          "MB/s");
        }
    }

    trace::Breakdown torus_bd;
    net::TopologySpec torus_spec;
    for (std::size_t nodes : sizes) {
        if (only_nodes && nodes != only_nodes)
            continue;
        for (const auto &[fname, kind] : fabrics) {
            // A 3D torus needs >= 2x2x2 switches (64 nodes at 4/switch);
            // beyond 256 nodes it is the only fabric swept.
            if (kind == net::TopologyKind::Torus3D && nodes < 64)
                continue;
            if (kind != net::TopologyKind::Torus3D && nodes > 256)
                continue;
            const ClusterSpec spec = specFor(kind, nodes);
            for (const std::string &pattern : patterns) {
                const bool keep_bd =
                    kind == net::TopologyKind::Torus2D && pattern == "uniform";
                const RunResult r =
                    run(spec, pattern, keep_bd ? &torus_bd : nullptr);
                if (keep_bd)
                    torus_spec = spec.topology();
                goodput[pattern][fname][nodes] = r.goodputMBs;
                table.addRow({pattern, fname, std::to_string(nodes),
                              ResultTable::num(r.goodputMBs, 3),
                              ResultTable::num(r.p50WriteUs, 2),
                              ResultTable::num(r.p99WriteUs, 2),
                              ResultTable::num(r.meanHops, 2),
                              r.drained ? "yes" : "NO"});
                const std::string tag = pattern + "." + fname + "." +
                                        std::to_string(nodes);
                report.metric(tag + ".goodput_mbs", r.goodputMBs, "MB/s");
                report.metric(tag + ".p50_write_us", r.p50WriteUs, "us");
                report.metric(tag + ".p99_write_us", r.p99WriteUs, "us");
                report.metric(tag + ".mean_hops", r.meanHops, "hops");
            }
        }
    }
    table.print();

    // The scaling claim: bisection-limited patterns (transpose, hotspot)
    // degrade on the ring but not on torus / fat-tree.
    int checks = 0, failures = 0;
    for (const std::string &pattern : {std::string("transpose"),
                                       std::string("hotspot")}) {
        for (std::size_t nodes : sizes) {
            // Only tiers where all three comparison fabrics ran.
            if (nodes < 64 || nodes > 256 ||
                (only_nodes && nodes != only_nodes))
                continue;
            const double ring = goodput[pattern]["ring"][nodes];
            const double torus = goodput[pattern]["torus2d"][nodes];
            const double ftree = goodput[pattern]["fattree"][nodes];
            const bool ok = ring < torus && ring < ftree;
            ++checks;
            failures += ok ? 0 : 1;
            std::printf("check %-9s @%3zu nodes: ring %.3f < torus %.3f, "
                        "fat-tree %.3f MB/s  [%s]\n",
                        pattern.c_str(), nodes, ring, torus, ftree,
                        ok ? "PASS" : "FAIL");
        }
    }
    if (checks)
        std::printf("\nshape check: %d/%d scaling assertions hold\n",
                    checks - failures, checks);

    // Faulted mode: self-healing 3D torus under a bisection-cut outage.
    std::printf("\n=== faulted: torus3d, ~2%% of trunks down mid-run ===\n");
    for (std::size_t nodes : {std::size_t(64), std::size_t(512)}) {
        if (only_nodes && nodes != only_nodes)
            continue;
        const FaultedTier ft = runFaulted(nodes, 0.02);
        // The fluid-model prediction assumes detoured load rebalances
        // across the surviving cut; at 512 nodes (32 crossings) that
        // holds to within 20%, while the 64-node torus has an 8-wide
        // cut where losing one crossing quantizes per-flow — there the
        // gate only rejects catastrophic (worse-than-60%) collapse.
        const double floor = nodes >= 512 ? 0.8 : 0.6;
        const bool goodput_ok = ft.faultMBs >= floor * ft.predictedMBs;
        const bool ok = goodput_ok && ft.hashStable && ft.drained &&
                        ft.flips >= 1;
        checks += 1;
        failures += ok ? 0 : 1;
        std::printf("check faulted @%4zu nodes: %zu/%zu cut trunks down, "
                    "base %.3f -> %.3f MB/s (predicted %.3f, %.0f%% of "
                    "prediction), %llu epochs, %llu flips, %llu failed, "
                    "hash %s  [%s]\n",
                    nodes, ft.downed, ft.bisection, ft.baseMBs, ft.faultMBs,
                    ft.predictedMBs,
                    ft.predictedMBs > 0
                        ? 100.0 * ft.faultMBs / ft.predictedMBs
                        : 0.0,
                    (unsigned long long)ft.epochs,
                    (unsigned long long)ft.flips,
                    (unsigned long long)ft.failures,
                    ft.hashStable ? "stable" : "UNSTABLE",
                    ok ? "PASS" : "FAIL");
        const std::string tag =
            "faulted.torus3d." + std::to_string(nodes);
        report.metric(tag + ".goodput_mbs", ft.faultMBs, "MB/s");
        report.metric(tag + ".baseline_mbs", ft.baseMBs, "MB/s");
        report.metric(tag + ".predicted_mbs", ft.predictedMBs, "MB/s");
        report.metric(tag + ".routing_epochs", double(ft.epochs));
        report.metric(tag + ".wire_failures", double(ft.failures));
    }

    if (torus_spec.nodes) {
        report.topology(torus_spec);
        report.breakdown(torus_bd);
    }
    report.write();
    return failures ? 1 : 0;
}

/**
 * @file
 * Experiment N1: interconnect scaling across topologies.
 *
 * The paper argues Telegraphos networks scale by adding switches
 * (section 2.2): this bench measures how far each fabric actually
 * carries that claim.  Uniform-random, transpose (bisection-crossing)
 * and hotspot traffic run over ring, 2D-torus and fat-tree fabrics at
 * 16/64/144/256 nodes (plus a small star baseline), reporting
 * saturation goodput, p50/p99 remote-write latency and the mean
 * switch-hop count from the packet-lifecycle tracer.
 *
 * Shape check (the scaling claim itself): on bisection-limited traffic
 * at >= 64 nodes the ring saturates below both the torus and the
 * fat-tree — more switches only help when the wiring adds bisection.
 *
 * Flags: --nodes=N   run only the N-node tier (CI smoke uses 64)
 *        --json[=p]  write the tg-bench-v1 document (with the topology
 *                    object and per-hop breakdown of the torus run)
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/traffic.hpp"

using namespace tg;

namespace {

struct RunResult
{
    double goodputMBs = 0; ///< delivered write payload over runtime
    double p50WriteUs = 0;
    double p99WriteUs = 0;
    double meanHops = 0;
    double runtimeUs = 0;
    bool drained = false;
};

constexpr int kOpsPerNode = 60;
constexpr double kReadFraction = 0.1;

ClusterSpec
specFor(net::TopologyKind kind, std::size_t nodes)
{
    return ClusterSpec::forKind(kind, nodes, 4).trace(true).seed(11);
}

RunResult
run(const ClusterSpec &spec, const std::string &pattern,
    trace::Breakdown *bd_out = nullptr)
{
    Cluster cluster(spec);
    const std::size_t nodes = cluster.numNodes();

    std::vector<Segment *> segs;
    for (NodeId n = 0; n < NodeId(nodes); ++n)
        segs.push_back(
            &cluster.allocShared("s" + std::to_string(n), 8192, n));

    workload::TrafficConfig cfg;
    cfg.ops = kOpsPerNode;
    cfg.readFraction = kReadFraction;
    cfg.gap = 0; // back-to-back: measures the fabric's saturation point
    for (NodeId n = 0; n < NodeId(nodes); ++n) {
        if (pattern == "transpose")
            cluster.spawn(n, workload::transposeTraffic(segs, cfg));
        else if (pattern == "hotspot")
            cluster.spawn(n, workload::hotspotTraffic(segs, cfg, 0, 0.25));
        else
            cluster.spawn(n, workload::randomTraffic(segs, cfg));
    }

    const Tick end = cluster.run(500'000'000'000'000ULL);

    RunResult r;
    r.drained = cluster.allDone();
    r.runtimeUs = toUs(end);
    const double write_bytes =
        double(nodes) * kOpsPerNode * (1.0 - kReadFraction) * 8.0;
    r.goodputMBs = write_bytes / r.runtimeUs; // B/us == MB/s

    const std::vector<Tick> lat =
        cluster.tracer().opLifetimes(trace::OpKind::RemoteWrite);
    if (!lat.empty()) {
        r.p50WriteUs = toUs(lat[lat.size() / 2]);
        r.p99WriteUs = toUs(lat[(lat.size() - 1) * 99 / 100]);
    }
    const trace::Breakdown bd = cluster.latencyBreakdown();
    if (const trace::OpBreakdown *w = bd.of(trace::OpKind::RemoteWrite))
        r.meanHops = w->meanHops;
    if (bd_out)
        *bd_out = bd;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_n1_scaling", argc, argv);
    std::size_t only_nodes = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--nodes=", 8) == 0)
            only_nodes = std::strtoul(argv[i] + 8, nullptr, 10);
    }

    std::printf("=== N1: topology scaling (section 2.2) ===\n");
    std::printf("%d ops/node back-to-back, %.0f%% reads, 4 nodes/switch\n\n",
                kOpsPerNode, kReadFraction * 100);

    const std::vector<std::size_t> sizes = {16, 64, 144, 256};
    const std::vector<std::pair<const char *, net::TopologyKind>> fabrics = {
        {"ring", net::TopologyKind::Ring},
        {"torus2d", net::TopologyKind::Torus2D},
        {"fattree", net::TopologyKind::FatTree},
    };
    const std::vector<std::string> patterns = {"uniform", "transpose",
                                              "hotspot"};

    // goodput[pattern][fabric][size] for the scaling assertions.
    std::map<std::string, std::map<std::string, std::map<std::size_t, double>>>
        goodput;

    ResultTable table({"pattern", "topology", "nodes", "goodput MB/s",
                       "p50 wr us", "p99 wr us", "hops/wr", "drained"});

    // Star baseline: one crossbar, only sensible small.
    if (!only_nodes || only_nodes == 16) {
        for (const std::string &pattern : patterns) {
            const RunResult r =
                run(specFor(net::TopologyKind::Star, 16), pattern);
            table.addRow({pattern, "star", "16",
                          ResultTable::num(r.goodputMBs, 3),
                          ResultTable::num(r.p50WriteUs, 2),
                          ResultTable::num(r.p99WriteUs, 2),
                          ResultTable::num(r.meanHops, 2),
                          r.drained ? "yes" : "NO"});
            report.metric(pattern + ".star.16.goodput_mbs", r.goodputMBs,
                          "MB/s");
        }
    }

    trace::Breakdown torus_bd;
    net::TopologySpec torus_spec;
    for (std::size_t nodes : sizes) {
        if (only_nodes && nodes != only_nodes)
            continue;
        for (const auto &[fname, kind] : fabrics) {
            const ClusterSpec spec = specFor(kind, nodes);
            for (const std::string &pattern : patterns) {
                const bool keep_bd =
                    kind == net::TopologyKind::Torus2D && pattern == "uniform";
                const RunResult r =
                    run(spec, pattern, keep_bd ? &torus_bd : nullptr);
                if (keep_bd)
                    torus_spec = spec.topology;
                goodput[pattern][fname][nodes] = r.goodputMBs;
                table.addRow({pattern, fname, std::to_string(nodes),
                              ResultTable::num(r.goodputMBs, 3),
                              ResultTable::num(r.p50WriteUs, 2),
                              ResultTable::num(r.p99WriteUs, 2),
                              ResultTable::num(r.meanHops, 2),
                              r.drained ? "yes" : "NO"});
                const std::string tag = pattern + "." + fname + "." +
                                        std::to_string(nodes);
                report.metric(tag + ".goodput_mbs", r.goodputMBs, "MB/s");
                report.metric(tag + ".p50_write_us", r.p50WriteUs, "us");
                report.metric(tag + ".p99_write_us", r.p99WriteUs, "us");
                report.metric(tag + ".mean_hops", r.meanHops, "hops");
            }
        }
    }
    table.print();

    // The scaling claim: bisection-limited patterns (transpose, hotspot)
    // degrade on the ring but not on torus / fat-tree.
    int checks = 0, failures = 0;
    for (const std::string &pattern : {std::string("transpose"),
                                       std::string("hotspot")}) {
        for (std::size_t nodes : sizes) {
            if (nodes < 64 || (only_nodes && nodes != only_nodes))
                continue;
            const double ring = goodput[pattern]["ring"][nodes];
            const double torus = goodput[pattern]["torus2d"][nodes];
            const double ftree = goodput[pattern]["fattree"][nodes];
            const bool ok = ring < torus && ring < ftree;
            ++checks;
            failures += ok ? 0 : 1;
            std::printf("check %-9s @%3zu nodes: ring %.3f < torus %.3f, "
                        "fat-tree %.3f MB/s  [%s]\n",
                        pattern.c_str(), nodes, ring, torus, ftree,
                        ok ? "PASS" : "FAIL");
        }
    }
    if (checks)
        std::printf("\nshape check: %d/%d scaling assertions hold\n",
                    checks - failures, checks);

    if (torus_spec.nodes) {
        report.topology(torus_spec);
        report.breakdown(torus_bd);
    }
    report.write();
    return failures ? 1 : 0;
}

/**
 * @file
 * Experiment A3: update vs invalidate coherence (section 2.3.6).
 *
 * "Telegraphos leaves such decisions entirely to software": the eager
 * update protocol suits producer/consumer sharing; invalidation suits
 * migratory data.  We run both sharing patterns under both protocols
 * and report runtimes — the crossover is the point of the section.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

/** Producer updates a block each round; consumers read it locally. */
double
producerConsumerUs(ProtocolKind kind, int rounds, std::size_t words)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster cluster(spec);
    Segment &data = cluster.allocShared("data", 8192, 0);
    data.replicate(1, kind);
    data.replicate(2, kind);
    Segment &flag = cluster.allocShared("flag", 8192, 0);

    cluster.spawn(0, [&, rounds, words](Ctx &ctx) -> Task<void> {
        for (int k = 1; k <= rounds; ++k) {
            for (std::size_t i = 0; i < words; ++i)
                co_await ctx.write(data.word(i), Word(k) * 100 + i);
            co_await ctx.fence();
            co_await ctx.write(flag.word(0), Word(k));
        }
        co_await ctx.fence();
    });
    for (NodeId n = 1; n <= 2; ++n) {
        cluster.spawn(n, [&, rounds, words](Ctx &ctx) -> Task<void> {
            for (int k = 1; k <= rounds; ++k) {
                while (co_await ctx.read(flag.word(0)) < Word(k))
                    co_await ctx.compute(2000);
                Word sum = 0;
                for (std::size_t i = 0; i < words; ++i)
                    sum += co_await ctx.read(data.word(i));
                (void)sum;
            }
        });
    }
    const Tick end = cluster.run(40'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

/** Migratory: one node at a time owns the data, updates it heavily. */
double
migratoryUs(ProtocolKind kind, int rounds, std::size_t words)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster cluster(spec);
    Segment &data = cluster.allocShared("data", 8192, 0);
    data.replicate(1, kind);
    data.replicate(2, kind);
    Segment &token = cluster.allocShared("token", 8192, 0);

    for (NodeId n = 0; n < 3; ++n) {
        cluster.spawn(n, [&, n, rounds, words](Ctx &ctx) -> Task<void> {
            for (int k = 0; k < rounds; ++k) {
                const Word my_turn = Word(k) * 3 + n;
                while (co_await ctx.read(token.word(0)) != my_turn)
                    co_await ctx.compute(2500);
                // Our phase: many local updates, nobody else reads.
                for (std::size_t i = 0; i < words; ++i)
                    co_await ctx.write(data.word(i), my_turn * 100 + i);
                co_await ctx.fence();
                co_await ctx.write(token.word(0), my_turn + 1);
            }
        });
    }
    const Tick end = cluster.run(40'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_a3_update_vs_invalidate", argc, argv);
    std::printf("=== A3: update vs invalidate coherence "
                "(section 2.3.6) ===\n\n");

    constexpr int kRounds = 12;
    ResultTable table({"sharing pattern", "words/round",
                       "eager update (us)", "invalidate (us)", "winner"});
    for (std::size_t words : {8u, 32u}) {
        const double pc_u =
            producerConsumerUs(ProtocolKind::OwnerCounter, kRounds, words);
        const double pc_i =
            producerConsumerUs(ProtocolKind::Invalidate, kRounds, words);
        table.addRow({"producer/consumer", std::to_string(words),
                      ResultTable::num(pc_u, 0), ResultTable::num(pc_i, 0),
                      pc_u < pc_i ? "update" : "invalidate"});

        const double mig_u =
            migratoryUs(ProtocolKind::OwnerCounter, kRounds, words);
        const double mig_i =
            migratoryUs(ProtocolKind::Invalidate, kRounds, words);
        table.addRow({"migratory", std::to_string(words),
                      ResultTable::num(mig_u, 0), ResultTable::num(mig_i, 0),
                      mig_u < mig_i ? "update" : "invalidate"});

        const std::string w = std::to_string(words);
        report.metric("producer_consumer.update_us.w" + w, pc_u, "us");
        report.metric("producer_consumer.invalidate_us.w" + w, pc_i, "us");
        report.metric("migratory.update_us.w" + w, mig_u, "us");
        report.metric("migratory.invalidate_us.w" + w, mig_i, "us");
    }
    table.print();

    std::printf("\nshape check: update wins producer/consumer (readers "
                "hit warm local copies); invalidate wins migratory "
                "(updates to data nobody reads are wasted traffic)\n");
    report.write();
    return 0;
}

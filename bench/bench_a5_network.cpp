/**
 * @file
 * Experiment A5: interconnect ablation (the switch of refs [16, 17]).
 *
 * Random remote traffic over star / chain / ring topologies while
 * sweeping link bandwidth and switch buffering.  Reports sustained
 * latency and verifies the invariants the paper's protocols rely on:
 * in-order delivery (checked by the test suite) and deadlock freedom
 * (every run drains).
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/traffic.hpp"

using namespace tg;

namespace {

struct RunResult
{
    double runtimeUs = 0;
    double meanWriteUs = 0;
    std::uint64_t forwarded = 0;
    bool drained = false;
};

RunResult
run(net::TopologyKind kind, std::size_t nodes, double link_bw,
    std::uint32_t switch_buf)
{
    ClusterSpec spec =
        ClusterSpec::forKind(kind, nodes, 2).tune([&](Config &c) {
            c.linkBytesPerTick = link_bw;
            c.switchQueuePackets = switch_buf;
        });
    Cluster cluster(spec);

    std::vector<Segment *> segs;
    for (NodeId n = 0; n < NodeId(nodes); ++n)
        segs.push_back(
            &cluster.allocShared("s" + std::to_string(n), 8192, n));

    workload::TrafficConfig cfg;
    cfg.ops = 250;
    cfg.readFraction = 0.25;
    cfg.gap = 500;
    for (NodeId n = 0; n < NodeId(nodes); ++n)
        cluster.spawn(n, workload::randomTraffic(segs, cfg));

    const Tick end = cluster.run(40'000'000'000'000ULL);

    RunResult r;
    r.drained = cluster.allDone();
    r.runtimeUs = toUs(end);
    r.forwarded = cluster.network().switchForwarded();
    return r;
}

const char *
kindName(net::TopologyKind k)
{
    switch (k) {
      case net::TopologyKind::Star: return "star";
      case net::TopologyKind::Chain: return "chain";
      case net::TopologyKind::Ring: return "ring";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_a5_network", argc, argv);
    std::printf("=== A5: interconnect ablation (switch refs [16,17]) ===\n");
    std::printf("uniform random remote traffic, 250 ops/node, 25%% "
                "reads\n\n");

    std::printf("--- topology scaling (default link 35 MB/s) ---\n");
    ResultTable topo({"topology", "nodes", "runtime (us)",
                      "switch packets", "drained"});
    struct TopoCase
    {
        net::TopologyKind kind;
        std::size_t nodes;
    };
    for (const TopoCase &tc :
         {TopoCase{net::TopologyKind::Star, 4},
          TopoCase{net::TopologyKind::Star, 8},
          TopoCase{net::TopologyKind::Chain, 8},
          TopoCase{net::TopologyKind::Ring, 8},
          TopoCase{net::TopologyKind::Ring, 12}}) {
        const RunResult r = run(tc.kind, tc.nodes, 0.035, 32);
        topo.addRow({kindName(tc.kind), std::to_string(tc.nodes),
                     ResultTable::num(r.runtimeUs, 0),
                     std::to_string(r.forwarded),
                     r.drained ? "yes" : "NO (deadlock!)"});
        report.metric(std::string("topo.") + kindName(tc.kind) + "." +
                          std::to_string(tc.nodes) + ".runtime_us",
                      r.runtimeUs, "us");
    }
    topo.print();

    std::printf("\n--- link bandwidth sweep (star, 8 nodes) ---\n");
    ResultTable bw({"link MB/s", "runtime (us)"});
    for (double mbps : {10.0, 35.0, 100.0, 400.0}) {
        const RunResult r =
            run(net::TopologyKind::Star, 8, mbps / 1000.0, 32);
        bw.addRow({ResultTable::num(mbps, 0),
                   ResultTable::num(r.runtimeUs, 0)});
        report.metric("bw.star8." + ResultTable::num(mbps, 0) +
                          "mbps.runtime_us",
                      r.runtimeUs, "us");
    }
    bw.print();

    std::printf("\n--- switch buffer sweep (ring, 8 nodes) ---\n");
    ResultTable buf({"buffer (packets)", "runtime (us)", "drained"});
    for (std::uint32_t b : {2u, 4u, 8u, 32u, 128u}) {
        const RunResult r = run(net::TopologyKind::Ring, 8, 0.035, b);
        buf.addRow({std::to_string(b), ResultTable::num(r.runtimeUs, 0),
                    r.drained ? "yes" : "NO (deadlock!)"});
        report.metric("buf.ring8." + std::to_string(b) + "pkt.runtime_us",
                      r.runtimeUs, "us");
    }
    buf.print();

    std::printf("\nshape check: every configuration drains (deadlock "
                "freedom); runtime improves with bandwidth and degrades "
                "gracefully with tiny buffers (back-pressure)\n");
    report.write();
    return 0;
}

/**
 * @file
 * Experiment F2: Figure 2 — inconsistency caused by multicasting in the
 * lack of ownership.
 *
 * Two (or more) nodes update their local copies of the same page
 * concurrently and multicast the updates.  Under the naive protocol the
 * copies permanently diverge; under the paper's owner-based counter
 * protocol they always converge.  We sweep the number of concurrent
 * writers and write intensity and report the fraction of words left
 * divergent after quiescence.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/chaotic.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

struct RunResult
{
    double divergentFrac = 0;
    std::uint64_t words = 0;
};

RunResult
run(ProtocolKind kind, std::size_t writers, int writes_per_node,
    std::uint64_t seed)
{
    ClusterSpec spec = ClusterSpec::star(writers).seed(seed);
    Cluster cluster(spec);

    Segment &seg = cluster.allocShared("page", 8192, 0);
    for (NodeId n = 1; n < NodeId(writers); ++n)
        seg.replicate(n, kind);

    workload::ChaoticConfig cfg;
    cfg.writes = writes_per_node;
    cfg.words = 64;
    cfg.gap = 800;
    for (NodeId n = 0; n < NodeId(writers); ++n)
        cluster.spawn(n, workload::chaoticWriter(seg, cfg));

    cluster.run(4'000'000'000'000ULL);

    RunResult r;
    r.words = cfg.words;
    std::uint64_t divergent = 0;
    for (std::size_t w = 0; w < cfg.words; ++w) {
        const Word home = seg.peek(w);
        for (NodeId n = 1; n < NodeId(writers); ++n) {
            if (seg.peekCopy(n, w) != home) {
                ++divergent;
                break;
            }
        }
    }
    r.divergentFrac = double(divergent) / double(cfg.words);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_f2_multicast_inconsistency", argc, argv);
    std::printf("=== F2: Figure 2 — multicast inconsistency without "
                "ownership ===\n");
    std::printf("chaotic unsynchronized writers on one replicated page; "
                "fraction of words whose copies diverge after "
                "quiescence\n\n");

    ResultTable table({"writers", "writes/node", "naive multicast",
                       "owner-counter (paper)"});
    for (std::size_t writers : {2u, 3u, 4u}) {
        for (int writes : {20, 100}) {
            double naive_acc = 0, owner_acc = 0;
            constexpr int kTrials = 3;
            for (int t = 0; t < kTrials; ++t) {
                naive_acc +=
                    run(ProtocolKind::Naive, writers, writes, 100 + t)
                        .divergentFrac;
                owner_acc +=
                    run(ProtocolKind::OwnerCounter, writers, writes, 100 + t)
                        .divergentFrac;
            }
            table.addRow({std::to_string(writers), std::to_string(writes),
                          ResultTable::num(100 * naive_acc / kTrials, 1) + "%",
                          ResultTable::num(100 * owner_acc / kTrials, 1) +
                              "%"});
            const std::string tag = "w" + std::to_string(writers) + ".n" +
                                    std::to_string(writes);
            report.metric("naive.divergent_pct." + tag,
                          100 * naive_acc / kTrials, "%");
            report.metric("owner.divergent_pct." + tag,
                          100 * owner_acc / kTrials, "%");
        }
    }
    table.print();

    std::printf("\nshape check: naive diverges under concurrent writers, "
                "the owner protocol never does (paper section 2.3)\n");
    report.write();
    return 0;
}

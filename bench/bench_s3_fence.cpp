/**
 * @file
 * Experiment S3: memory consistency and the FENCE (section 2.3.5).
 *
 * Producer/consumer with the flag on a fast path and the data on a slow
 * (owner-reflected) path.  Without the MEMORY_BARRIER the consumer reads
 * stale data; embedding the fence in the synchronization removes every
 * stale read at a measurable synchronization cost — "this approach makes
 * synchronization more expensive, but keeps the cost of remote write
 * operations low".
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

struct RunResult
{
    std::uint64_t staleRounds = 0;
    int rounds = 0;
    double producerUsPerRound = 0;
    double fenceUs = 0;
};

RunResult
run(bool use_fence, int rounds, std::size_t words)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster cluster(spec);
    Segment &data = cluster.allocShared("data", 8192, 0);
    data.replicate(1, ProtocolKind::OwnerCounter);
    data.replicate(2, ProtocolKind::OwnerCounter);
    Segment &flag = cluster.allocShared("flag", 8192, 2);

    RunResult r;
    r.rounds = rounds;
    Tick produce_ticks = 0, fence_ticks = 0;

    cluster.spawn(1, [&, use_fence, rounds, words](Ctx &ctx) -> Task<void> {
        for (int k = 1; k <= rounds; ++k) {
            const Tick t0 = ctx.now();
            for (std::size_t i = 0; i < words; ++i)
                co_await ctx.write(data.word(i), Word(k) * 1000 + i);
            if (use_fence) {
                const Tick f0 = ctx.now();
                co_await ctx.fence();
                fence_ticks += ctx.now() - f0;
            }
            co_await ctx.write(flag.word(0), Word(k));
            produce_ticks += ctx.now() - t0;
            co_await ctx.compute(30'000);
        }
        co_await ctx.fence();
    });
    cluster.spawn(2, [&, rounds, words](Ctx &ctx) -> Task<void> {
        for (int k = 1; k <= rounds; ++k) {
            while (co_await ctx.read(flag.word(0)) < Word(k))
                co_await ctx.compute(300);
            bool stale = false;
            for (std::size_t i = 0; i < words; ++i) {
                if (co_await ctx.read(data.word(i)) != Word(k) * 1000 + i)
                    stale = true;
            }
            if (stale)
                ++r.staleRounds;
        }
    });
    cluster.run(8'000'000'000'000ULL);

    r.producerUsPerRound = toUs(produce_ticks) / rounds;
    r.fenceUs = use_fence ? toUs(fence_ticks) / rounds : 0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_s3_fence", argc, argv);
    std::printf("=== S3: the flag/data race and the MEMORY_BARRIER "
                "(section 2.3.5) ===\n\n");

    ResultTable table({"data words", "variant", "stale rounds",
                       "producer us/round", "fence us/round"});
    for (std::size_t words : {4u, 16u, 64u}) {
        const RunResult plain = run(false, 25, words);
        const RunResult fenced = run(true, 25, words);
        table.addRow(
            {std::to_string(words), "write(flag) only",
             std::to_string(plain.staleRounds) + "/" +
                 std::to_string(plain.rounds),
             ResultTable::num(plain.producerUsPerRound, 1), "-"});
        table.addRow(
            {std::to_string(words), "FENCE; write(flag)",
             std::to_string(fenced.staleRounds) + "/" +
                 std::to_string(fenced.rounds),
             ResultTable::num(fenced.producerUsPerRound, 1),
             ResultTable::num(fenced.fenceUs, 1)});
        const std::string w = "w" + std::to_string(words);
        report.metric(w + ".plain.stale_rounds", double(plain.staleRounds));
        report.metric(w + ".fenced.stale_rounds",
                      double(fenced.staleRounds));
        report.metric(w + ".fenced.fence_us", fenced.fenceUs, "us");
    }
    table.print();

    std::printf("\nshape check: stale reads appear without the fence and "
                "are exactly zero with it; the fence cost grows with the "
                "amount of outstanding data\n");
    report.write();
    return 0;
}

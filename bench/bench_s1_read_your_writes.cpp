/**
 * @file
 * Experiment S1: the section 2.3.2 read-your-writes scenarios.
 *
 * A non-owner writes M=2 then M=3 back-to-back and reads M repeatedly
 * while the reflected writes return from the owner.  Without pending
 * counters (Telegraphos I) the reflected "2" overwrites the newer "3"
 * and a read can return the overwritten value; with the counter-based
 * protocol (section 2.3.3) every read returns the latest local value.
 * We sweep write-pair counts and report the observed error rate, plus
 * the per-operation overhead of the counter mechanism.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

struct RunResult
{
    std::uint64_t errors = 0;
    std::uint64_t reads = 0;
    double writeUs = 0; // mean store latency seen by the CPU
};

RunResult
run(bool with_counters, int pairs)
{
    ClusterSpec spec =
        ClusterSpec::star(2)
            .prototype(Prototype::TelegraphosII)
            .tune([&](Config &c) {
                if (!with_counters)
                    c.counterCacheEntries = 0; // Telegraphos I behaviour
            });
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("page", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    RunResult r;
    Tick write_ticks = 0;
    cluster.spawn(1, [&, pairs](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < pairs; ++k) {
            const Tick t0 = ctx.now();
            co_await ctx.write(seg.word(0), Word(k) * 10 + 2);
            co_await ctx.write(seg.word(0), Word(k) * 10 + 3);
            write_ticks += ctx.now() - t0;
            // Read while the reflections race back.
            for (int probe = 0; probe < 8; ++probe) {
                const Word v = co_await ctx.read(seg.word(0));
                ++r.reads;
                if (v != Word(k) * 10 + 3)
                    ++r.errors;
                co_await ctx.compute(700);
            }
            co_await ctx.fence();
        }
    });
    cluster.run(4'000'000'000'000ULL);
    r.writeUs = toUs(write_ticks) / (2.0 * pairs);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_s1_read_your_writes", argc, argv);
    std::printf("=== S1: read-your-writes (section 2.3.2) ===\n");
    std::printf("non-owner writes M=2; M=3, then reads M while the "
                "reflected writes return\n\n");

    ResultTable table({"write pairs", "variant", "erroneous reads",
                       "error rate", "store latency (us)"});
    for (int pairs : {10, 50, 200}) {
        const RunResult no_ctr = run(false, pairs);
        const RunResult ctr = run(true, pairs);
        table.addRow({std::to_string(pairs), "no counters (Tele I)",
                      std::to_string(no_ctr.errors),
                      ResultTable::num(100.0 * no_ctr.errors / no_ctr.reads,
                                       1) +
                          "%",
                      ResultTable::num(no_ctr.writeUs, 3)});
        table.addRow({std::to_string(pairs), "counter protocol (2.3.3)",
                      std::to_string(ctr.errors),
                      ResultTable::num(100.0 * ctr.errors / ctr.reads, 1) +
                          "%",
                      ResultTable::num(ctr.writeUs, 3)});
        const std::string p = "pairs" + std::to_string(pairs);
        report.metric(p + ".no_counters.errors", double(no_ctr.errors));
        report.metric(p + ".counters.errors", double(ctr.errors));
        report.metric(p + ".counters.write_us", ctr.writeUs, "us");
    }
    table.print();

    std::printf("\nshape check: errors > 0 without counters, exactly 0 "
                "with them; counter overhead is a few memory accesses "
                "per store (section 2.3.3)\n");
    report.write();
    return 0;
}

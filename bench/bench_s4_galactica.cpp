/**
 * @file
 * Experiment S4: Galactica-ring anomaly (section 2.4).
 *
 * Under Galactica's ring-update + back-off protocol, a third processor
 * can observe the value sequence "1,2,1" — not a valid program order
 * under any consistency model.  The paper's counter protocol guarantees
 * every node sees a subset of the owner's sequence, in order.  We sweep
 * conflict offsets, count invalid observed sequences for both protocols,
 * and verify convergence.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "coherence/galactica_ring.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

struct RunResult
{
    std::uint64_t invalidSequences = 0; ///< regressions like 1,2,1
    std::uint64_t trials = 0;
    std::uint64_t diverged = 0;
    std::uint64_t backoffs = 0;
};

/** A value sequence is invalid if a value reappears after being
 *  overwritten by a different value (w, w', w with w != w'). */
bool
isInvalidSequence(const std::vector<Word> &seq)
{
    for (std::size_t i = 0; i + 2 < seq.size(); ++i) {
        for (std::size_t j = i + 1; j + 1 < seq.size(); ++j) {
            if (seq[j] != seq[i]) {
                for (std::size_t k = j + 1; k < seq.size(); ++k) {
                    if (seq[k] == seq[i])
                        return true;
                }
            }
        }
    }
    return false;
}

RunResult
run(ProtocolKind kind, int trials)
{
    RunResult r;
    r.trials = trials;
    for (int t = 0; t < trials; ++t) {
        ClusterSpec spec = ClusterSpec::star(3).seed(1000 + t);
        Cluster cluster(spec);
        Segment &seg = cluster.allocShared("page", 8192, 0);
        // Ring order 0, 2, 1 puts the observer between the writers.
        seg.replicate(2, kind);
        seg.replicate(1, kind);

        std::vector<Word> seen_at_2;
        cluster.observeWrites([&](const coherence::ApplyEvent &ev) {
            if (ev.node == 2 && ev.homeAddr == seg.homeWord(0))
                seen_at_2.push_back(ev.value);
        });

        const Tick offset = 200 * Tick(t % 12);
        cluster.spawn(0, [&](Ctx &ctx) -> Task<void> {
            co_await ctx.write(seg.word(0), 1);
            co_await ctx.fence();
        });
        cluster.spawn(1, [&, offset](Ctx &ctx) -> Task<void> {
            if (offset)
                co_await ctx.compute(offset);
            co_await ctx.write(seg.word(0), 2);
            co_await ctx.fence();
        });
        cluster.run(2'000'000'000'000ULL);

        if (isInvalidSequence(seen_at_2))
            ++r.invalidSequences;
        const Word home = seg.peek(0);
        for (NodeId n = 1; n <= 2; ++n) {
            if (seg.peekCopy(n, 0) != home) {
                ++r.diverged;
                break;
            }
        }
        if (kind == ProtocolKind::GalacticaRing) {
            auto &proto = static_cast<coherence::GalacticaRingProtocol &>(
                cluster.protocol(kind));
            r.backoffs += proto.backoffs();
        }
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_s4_galactica", argc, argv);
    std::printf("=== S4: Galactica '1,2,1' anomaly vs the counter "
                "protocol (section 2.4) ===\n");
    std::printf("two conflicting writers, observer on the ring between "
                "them, 24 timing offsets\n\n");

    const RunResult gal = run(ProtocolKind::GalacticaRing, 24);
    const RunResult own = run(ProtocolKind::OwnerCounter, 24);

    ResultTable table({"protocol", "invalid sequences", "diverged",
                       "back-offs"});
    table.addRow({"Galactica ring [15]",
                  std::to_string(gal.invalidSequences) + "/" +
                      std::to_string(gal.trials),
                  std::to_string(gal.diverged),
                  std::to_string(gal.backoffs)});
    table.addRow({"owner-counter (paper)",
                  std::to_string(own.invalidSequences) + "/" +
                      std::to_string(own.trials),
                  std::to_string(own.diverged), "-"});
    table.print();

    std::printf("\nshape check: Galactica converges (0 diverged) but "
                "shows invalid sequences; the counter protocol shows "
                "neither\n");

    report.metric("galactica.invalid_sequences",
                  double(gal.invalidSequences));
    report.metric("galactica.backoffs", double(gal.backoffs));
    report.metric("owner.invalid_sequences", double(own.invalidSequences));
    report.write();
    return gal.invalidSequences > 0 && own.invalidSequences == 0 &&
                   gal.diverged == 0 && own.diverged == 0
               ? 0
               : 1;
}

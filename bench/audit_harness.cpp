/**
 * @file
 * Audit harness: the executable proof of the determinism contract.
 *
 * Runs a workload twice with the same configuration + seed, FNV-hashes
 * the full event trace of each run (every fired event plus every packet
 * crossing a HIB boundary) and fails loudly on any mismatch.  Also
 * checks packet conservation at quiescence on both runs.
 *
 * Usage:
 *   audit_harness [--workload hotspot|traffic] [--seed N] [--nodes N]
 *                 [--faulty] [--verbose]
 *
 * Exit status: 0 when the two runs are bit-identical and conserved,
 * 1 on divergence or a conservation failure, 2 on usage error.
 *
 * Wired into ctest (audit_hotspot / audit_traffic / audit_faulty) so the
 * determinism property is enforced on every test run, not just when a
 * developer remembers to check.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "workload/hotspot.hpp"
#include "workload/traffic.hpp"

namespace {

struct RunResult
{
    std::uint64_t hash = 0;
    std::uint64_t mixed = 0;
    std::uint64_t events = 0;
    tg::Tick end = 0;
    bool conserved = false;
    std::string why;
};

RunResult
runOnce(const std::string &workload, std::uint64_t seed, int nodes,
        bool faulty)
{
    tg::ClusterSpec spec =
        tg::ClusterSpec::chain(static_cast<tg::NodeId>(nodes), 2)
            .seed(seed)
            .tune([&](tg::Config &c) {
                if (faulty) {
                    c.fault.bitErrorRate = 1e-3;
                    c.fault.dropRate = 1e-3;
                    c.fault.duplicateRate = 1e-3;
                }
            });
    tg::Cluster c(spec);

    if (workload == "hotspot") {
        tg::Segment &ctr = c.allocShared("ctr", 8192, 0);
        tg::workload::HotspotConfig hcfg;
        hcfg.increments = 40;
        for (tg::NodeId n = 0; n < nodes; ++n)
            c.spawn(n, tg::workload::hotspotWorker(ctr, hcfg));
    } else if (workload == "traffic") {
        std::vector<tg::Segment *> segs;
        for (tg::NodeId n = 0; n < nodes; ++n)
            segs.push_back(
                &c.allocShared("t" + std::to_string(n), 8192, n));
        tg::workload::TrafficConfig tcfg;
        tcfg.ops = 80;
        for (tg::NodeId n = 0; n < nodes; ++n)
            c.spawn(n, tg::workload::randomTraffic(segs, tcfg));
    } else {
        std::cerr << "audit_harness: unknown workload '" << workload
                  << "'\n";
        std::exit(2);
    }

    RunResult r;
    r.end = c.run(4'000'000'000'000ULL);
    r.hash = c.traceHash();
    r.mixed = c.traceLength();
    r.events = c.system().events().executed();
    r.conserved = c.auditQuiescent(&r.why);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "hotspot";
    std::uint64_t seed = 1;
    int nodes = 4;
    bool faulty = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "audit_harness: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next();
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--nodes")
            nodes = std::stoi(next());
        else if (arg == "--faulty")
            faulty = true;
        else if (arg == "--verbose")
            verbose = true;
        else {
            std::cerr << "usage: audit_harness [--workload hotspot|traffic] "
                         "[--seed N] [--nodes N] [--faulty] [--verbose]\n";
            return 2;
        }
    }

    const RunResult a = runOnce(workload, seed, nodes, faulty);
    const RunResult b = runOnce(workload, seed, nodes, faulty);

    if (verbose) {
        std::cout << "run A: hash=" << std::hex << a.hash << std::dec
                  << " words=" << a.mixed << " events=" << a.events
                  << " end=" << a.end << "\n";
        std::cout << "run B: hash=" << std::hex << b.hash << std::dec
                  << " words=" << b.mixed << " events=" << b.events
                  << " end=" << b.end << "\n";
    }

    bool ok = true;
    if (a.hash != b.hash || a.mixed != b.mixed || a.events != b.events ||
        a.end != b.end) {
        std::cerr << "audit_harness: DETERMINISM VIOLATION: workload="
                  << workload << " seed=" << seed << " hashA=" << std::hex
                  << a.hash << " hashB=" << b.hash << std::dec
                  << " eventsA=" << a.events << " eventsB=" << b.events
                  << "\n";
        ok = false;
    }
    if (!a.conserved || !b.conserved) {
        std::cerr << "audit_harness: CONSERVATION FAILURE: "
                  << (a.conserved ? b.why : a.why) << "\n";
        ok = false;
    }
    if (a.mixed == 0) {
        std::cerr << "audit_harness: empty trace — nothing was audited\n";
        ok = false;
    }

    if (ok)
        std::cout << "audit_harness: " << workload << " seed=" << seed
                  << (faulty ? " (faulty)" : "") << " deterministic, "
                  << a.mixed << " trace words, hash=" << std::hex << a.hash
                  << std::dec << "\n";
    return ok ? 0 : 1;
}

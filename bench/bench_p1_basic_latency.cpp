/**
 * @file
 * Experiment P1: the paper's section 3.2 latency table.
 *
 *   | Operation    | Elapsed Time (usec) |   (paper, DEC 3000/300 pair)
 *   | Remote Read  | 7.2                 |
 *   | Remote Write | 0.70                |
 *
 * Methodology mirrors the paper: one application on one workstation
 * performs 10000 remote operations against the other workstation's HIB
 * through ordinary load/store instructions; we report the mean latency.
 * Also reported: remote atomic and fence costs, and per-prototype
 * variants — the paper measured Telegraphos I.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;

namespace {

struct Latencies
{
    double writeUs = 0;
    double readUs = 0;
    double atomicUs = 0;
    double fenceUs = 0;
};

Latencies
measure(Prototype proto, int ops)
{
    ClusterSpec spec;
    spec.topology.nodes = 2;
    spec.config.prototype = proto;
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("target", 8192, /*owner=*/0);

    Latencies out;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // -- remote writes ------------------------------------------------
        // Exactly the paper's methodology: a stream of `ops` stores,
        // total elapsed time divided by the count.  The long stream runs
        // at the network transfer rate (section 3.2).
        const Tick w0 = ctx.now();
        for (int i = 0; i < ops; ++i)
            co_await ctx.write(seg.word(i % 64), Word(i));
        co_await ctx.fence();
        out.writeUs = toUs(ctx.now() - w0) / ops;

        // -- remote reads -------------------------------------------------
        Tick acc = 0;
        for (int i = 0; i < ops; ++i) {
            const Tick t0 = ctx.now();
            (void)co_await ctx.read(seg.word(i % 64));
            acc += ctx.now() - t0;
        }
        out.readUs = toUs(acc) / ops;

        // -- remote atomic (fetch&inc) -------------------------------------
        acc = 0;
        for (int i = 0; i < ops / 10; ++i) {
            const Tick t0 = ctx.now();
            (void)co_await ctx.fetchAdd(seg.word(64), 1);
            acc += ctx.now() - t0;
        }
        out.atomicUs = toUs(acc) / (ops / 10);

        // -- fence after one write ----------------------------------------
        acc = 0;
        for (int i = 0; i < ops / 10; ++i) {
            co_await ctx.write(seg.word(0), Word(i));
            const Tick t0 = ctx.now();
            co_await ctx.fence();
            acc += ctx.now() - t0;
        }
        out.fenceUs = toUs(acc) / (ops / 10);
    });

    cluster.run(2'000'000'000'000ULL);
    return out;
}

} // namespace

int
main()
{
    constexpr int kOps = 10000; // as in the paper

    std::printf("=== P1: basic operation latency (section 3.2) ===\n");
    std::printf("methodology: %d operations node1 -> node0, "
                "DEC 3000/300 + TurboChannel calibration\n\n", kOps);

    const Latencies t1 = measure(Prototype::TelegraphosI, kOps);
    const Latencies t2 = measure(Prototype::TelegraphosII, kOps);

    ResultTable table({"Operation", "Telegraphos I (us)",
                       "Telegraphos II (us)", "paper (us)"});
    table.addRow({"Remote Write", ResultTable::num(t1.writeUs),
                  ResultTable::num(t2.writeUs), "0.70"});
    table.addRow({"Remote Read", ResultTable::num(t1.readUs, 1),
                  ResultTable::num(t2.readUs, 1), "7.2"});
    table.addRow({"Remote Fetch&Inc", ResultTable::num(t1.atomicUs, 1),
                  ResultTable::num(t2.atomicUs, 1), "-"});
    table.addRow({"Fence (1 write)", ResultTable::num(t1.fenceUs, 1),
                  ResultTable::num(t2.fenceUs, 1), "-"});
    table.print();

    std::printf("\nshape check: write ~10x cheaper than read "
                "(paper: 0.70 vs 7.2)\n");
    return 0;
}

/**
 * @file
 * Experiment P1: the paper's section 3.2 latency table.
 *
 *   | Operation    | Elapsed Time (usec) |   (paper, DEC 3000/300 pair)
 *   | Remote Read  | 7.2                 |
 *   | Remote Write | 0.70                |
 *
 * Methodology mirrors the paper: one application on one workstation
 * performs 10000 remote operations against the other workstation's HIB
 * through ordinary load/store instructions; we report the mean latency.
 * Also reported: remote atomic and fence costs, and per-prototype
 * variants — the paper measured Telegraphos I.
 */

#include <cstdio>
#include <set>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;

namespace {

struct Latencies
{
    double writeUs = 0;
    double readUs = 0;
    double atomicUs = 0;
    double fenceUs = 0;
    /** Mean request-hop wire serialization of a remote write (traced
     *  runs only).  Steady-state streamed writes complete at exactly
     *  this interval — the paper's 0.70 us (section 3.2). */
    double writeWireUs = 0;
};

Latencies
measure(Prototype proto, int ops, BenchReport *report = nullptr,
        bool traced = false)
{
    // Tracing is passive (DESIGN.md section 8): latencies are identical
    // with it on, so the traced run doubles as the measurement run.
    ClusterSpec spec = ClusterSpec::star(2).prototype(proto).trace(traced);
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("target", 8192, /*owner=*/0);

    Latencies out;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // -- remote writes ------------------------------------------------
        // Exactly the paper's methodology: a stream of `ops` stores,
        // total elapsed time divided by the count.  The long stream runs
        // at the network transfer rate (section 3.2).
        const Tick w0 = ctx.now();
        for (int i = 0; i < ops; ++i)
            co_await ctx.write(seg.word(i % 64), Word(i));
        co_await ctx.fence();
        out.writeUs = toUs(ctx.now() - w0) / ops;

        // -- remote reads -------------------------------------------------
        Tick acc = 0;
        for (int i = 0; i < ops; ++i) {
            const Tick t0 = ctx.now();
            (void)co_await ctx.read(seg.word(i % 64));
            acc += ctx.now() - t0;
        }
        out.readUs = toUs(acc) / ops;

        // -- remote atomic (fetch&inc) -------------------------------------
        acc = 0;
        for (int i = 0; i < ops / 10; ++i) {
            const Tick t0 = ctx.now();
            (void)co_await ctx.fetchAdd(seg.word(64), 1);
            acc += ctx.now() - t0;
        }
        out.atomicUs = toUs(acc) / (ops / 10);

        // -- fence after one write ----------------------------------------
        acc = 0;
        for (int i = 0; i < ops / 10; ++i) {
            co_await ctx.write(seg.word(0), Word(i));
            const Tick t0 = ctx.now();
            co_await ctx.fence();
            acc += ctx.now() - t0;
        }
        out.fenceUs = toUs(acc) / (ops / 10);
    });

    cluster.run(2'000'000'000'000ULL);

    if (traced) {
        // The streamed-write rate is bottlenecked by wire serialization:
        // average the request-hop LinkTx serialization time (the event's
        // aux payload) over every traced remote write.
        std::set<std::uint64_t> seen;
        std::uint64_t serSum = 0, serN = 0;
        const trace::Tracer &tr = cluster.tracer();
        for (const trace::TraceEvent &ev : tr.events()) {
            if (ev.span != trace::Span::LinkTx || seen.count(ev.id))
                continue;
            if (tr.kindOf(ev.id) != trace::OpKind::RemoteWrite)
                continue;
            seen.insert(ev.id);
            serSum += ev.aux;
            ++serN;
        }
        if (serN)
            out.writeWireUs = toUs(static_cast<Tick>(serSum)) /
                              static_cast<double>(serN);

        const trace::Breakdown bd = cluster.latencyBreakdown();
        std::printf("\n--- lifecycle breakdown (%s, traced run) ---\n",
                    proto == Prototype::TelegraphosI ? "Telegraphos I"
                                                     : "Telegraphos II");
        bd.print(std::cout);
        std::printf("(streamed writes pipeline: the per-op lifecycle above "
                    "includes queueing;\n the sustained rate is the wire "
                    "serialization interval, %.2f us/write)\n",
                    out.writeWireUs);
        if (report) {
            report->breakdown(bd);
            report->stats(cluster);
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr int kOps = 10000; // as in the paper
    BenchReport report("bench_p1_basic_latency", argc, argv);

    std::printf("=== P1: basic operation latency (section 3.2) ===\n");
    std::printf("methodology: %d operations node1 -> node0, "
                "DEC 3000/300 + TurboChannel calibration\n\n", kOps);

    const Latencies t1 =
        measure(Prototype::TelegraphosI, kOps, &report, /*traced=*/true);
    const Latencies t2 = measure(Prototype::TelegraphosII, kOps);

    ResultTable table({"Operation", "Telegraphos I (us)",
                       "Telegraphos II (us)", "paper (us)"});
    table.addRow({"Remote Write", ResultTable::num(t1.writeUs),
                  ResultTable::num(t2.writeUs), "0.70"});
    table.addRow({"Remote Read", ResultTable::num(t1.readUs, 1),
                  ResultTable::num(t2.readUs, 1), "7.2"});
    table.addRow({"Remote Fetch&Inc", ResultTable::num(t1.atomicUs, 1),
                  ResultTable::num(t2.atomicUs, 1), "-"});
    table.addRow({"Fence (1 write)", ResultTable::num(t1.fenceUs, 1),
                  ResultTable::num(t2.fenceUs, 1), "-"});
    table.print();

    std::printf("\nshape check: write ~10x cheaper than read "
                "(paper: 0.70 vs 7.2)\n");

    report.anchor("t1.remote_write_us", t1.writeUs, 0.70);
    report.anchor("t1.remote_read_us", t1.readUs, 7.2);
    report.anchor("t1.write_wire_interval_us", t1.writeWireUs, 0.70);
    report.metric("t1.remote_fetch_inc_us", t1.atomicUs, "us");
    report.metric("t1.fence_us", t1.fenceUs, "us");
    report.metric("t2.remote_write_us", t2.writeUs, "us");
    report.metric("t2.remote_read_us", t2.readUs, "us");
    report.write();
    return 0;
}

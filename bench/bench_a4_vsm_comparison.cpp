/**
 * @file
 * Experiment A4: Telegraphos vs the traditional software substrates the
 * paper's introduction argues against (sections 1 and 2.1).
 *
 *  - word ping-pong: two nodes alternately increment a shared word —
 *    Telegraphos remote ops vs VSM page-fault DSM;
 *  - fine-grain false sharing: two nodes write different words of the
 *    same page — VSM thrashes (ping-ponging the whole 8 KB page),
 *    Telegraphos writes each word remotely for under a microsecond;
 *  - small-message latency: remote write + flag vs socket send/recv.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "baseline/sockets.hpp"
#include "baseline/vsm.hpp"

using namespace tg;

namespace {

double
pingPongTelegraphosUs(int rounds)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("s", 8192, 0);

    for (NodeId n = 0; n < 2; ++n) {
        cluster.spawn(n, [&, n, rounds](Ctx &ctx) -> Task<void> {
            for (int k = 0; k < rounds; ++k) {
                const Word my_turn = Word(k) * 2 + n;
                while (co_await ctx.read(seg.word(0)) != my_turn)
                    co_await ctx.compute(1500);
                co_await ctx.write(seg.word(0), my_turn + 1);
                co_await ctx.fence();
            }
        });
    }
    const Tick end = cluster.run(400'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

double
pingPongVsmUs(int rounds)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    baseline::VsmDsm vsm(cluster);
    const VAddr base = vsm.alloc("v", 8192, 0);

    for (NodeId n = 0; n < 2; ++n) {
        cluster.spawn(n, [&, n, base, rounds](Ctx &ctx) -> Task<void> {
            for (int k = 0; k < rounds; ++k) {
                const Word my_turn = Word(k) * 2 + n;
                while (co_await ctx.read(base) != my_turn)
                    co_await ctx.compute(40'000);
                co_await ctx.write(base, my_turn + 1);
            }
        });
    }
    const Tick end = cluster.run(400'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

double
falseSharingTelegraphosUs(int writes)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("s", 8192, 0);

    for (NodeId n = 1; n <= 2; ++n) {
        cluster.spawn(n, [&, n, writes](Ctx &ctx) -> Task<void> {
            for (int k = 0; k < writes; ++k) {
                co_await ctx.write(seg.word(n), Word(k));
                co_await ctx.compute(2000);
            }
            co_await ctx.fence();
        });
    }
    const Tick end = cluster.run(400'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

double
falseSharingVsmUs(int writes)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster cluster(spec);
    baseline::VsmDsm vsm(cluster);
    const VAddr base = vsm.alloc("v", 8192, 0);

    for (NodeId n = 1; n <= 2; ++n) {
        cluster.spawn(n, [&, n, base, writes](Ctx &ctx) -> Task<void> {
            for (int k = 0; k < writes; ++k) {
                co_await ctx.write(base + n * 8, Word(k));
                co_await ctx.compute(2000);
            }
        });
    }
    const Tick end = cluster.run(400'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

double
messageTelegraphosUs(int msgs)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("s", 8192, 0);

    Tick acc = 0;
    cluster.spawn(1, [&, msgs](Ctx &ctx) -> Task<void> {
        for (int k = 1; k <= msgs; ++k) {
            const Tick t0 = ctx.now();
            co_await ctx.write(seg.word(1), Word(k) * 7); // payload
            co_await ctx.fence();
            co_await ctx.write(seg.word(0), Word(k)); // flag
            co_await ctx.fence();
            acc += ctx.now() - t0;
        }
    });
    cluster.run(400'000'000'000'000ULL);
    return toUs(acc) / msgs;
}

double
messageSocketsUs(int msgs)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    baseline::SocketLayer sockets(cluster);

    Tick acc = 0;
    bool done = false;
    cluster.spawn(1, [&, msgs](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < msgs; ++k) {
            const Tick t0 = ctx.now();
            co_await sockets.send(ctx, 0, 1, 16);
            acc += ctx.now() - t0;
        }
        done = true;
    });
    cluster.spawn(0, [&, msgs](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < msgs; ++k)
            co_await sockets.recv(ctx, 1);
    });
    cluster.run(400'000'000'000'000ULL);
    (void)done;
    return toUs(acc) / msgs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_a4_vsm_comparison", argc, argv);
    std::printf("=== A4: Telegraphos vs software substrates "
                "(sections 1, 2.1) ===\n\n");

    constexpr int kRounds = 20;
    const double tg_pp = pingPongTelegraphosUs(kRounds);
    const double vsm_pp = pingPongVsmUs(kRounds);
    const double tg_fs = falseSharingTelegraphosUs(50);
    const double vsm_fs = falseSharingVsmUs(50);
    const double tg_msg = messageTelegraphosUs(100);
    const double so_msg = messageSocketsUs(100);

    ResultTable table({"workload", "Telegraphos", "software substrate",
                       "speedup"});
    table.addRow({"word ping-pong, 20 rounds (us)",
                  ResultTable::num(tg_pp, 0), ResultTable::num(vsm_pp, 0),
                  ResultTable::num(vsm_pp / tg_pp, 1) + "x"});
    table.addRow({"false sharing, 50 writes x 2 (us)",
                  ResultTable::num(tg_fs, 0), ResultTable::num(vsm_fs, 0),
                  ResultTable::num(vsm_fs / tg_fs, 1) + "x"});
    table.addRow({"small message send (us each)",
                  ResultTable::num(tg_msg, 1), ResultTable::num(so_msg, 1),
                  ResultTable::num(so_msg / tg_msg, 1) + "x"});
    table.print();

    std::printf("\nshape check: Telegraphos wins every fine-grain "
                "pattern by 1-3 orders of magnitude — the overhead "
                "eliminated is exactly the OS intervention of "
                "section 1\n");

    report.metric("pingpong.telegraphos_us", tg_pp, "us");
    report.metric("pingpong.vsm_us", vsm_pp, "us");
    report.metric("false_sharing.telegraphos_us", tg_fs, "us");
    report.metric("false_sharing.vsm_us", vsm_fs, "us");
    report.metric("message.telegraphos_us", tg_msg, "us");
    report.metric("message.sockets_us", so_msg, "us");
    report.write();
    return 0;
}

/**
 * @file
 * Experiment A1: special-operation launch paths (sections 2.2.4-2.2.5).
 *
 * Compares the latency of remote atomic operations under the three
 * launch mechanisms the paper discusses:
 *   - OS trap (the baseline all fast launches are measured against),
 *   - Telegraphos I special mode inside PAL code,
 *   - Telegraphos II contexts + keys + shadow addressing,
 * with and without context-switch interference (the problem contexts
 * solve: launch state survives preemption with zero extra cost).
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;

namespace {

double
atomicLatencyUs(Prototype proto, LaunchMode mode, bool interference,
                int ops, bool flash_os_support = false,
                bool dummy_first = false)
{
    ClusterSpec spec =
        ClusterSpec::star(2).prototype(proto).tune([&](Config &c) {
            if (interference)
                c.cpuQuantum = 40'000; // aggressive time slicing
        });
    Cluster cluster(spec);
    if (flash_os_support)
        cluster.enableFlashOsSupport();
    Segment &seg = cluster.allocShared("s", 8192, 0);

    // On a stock OS the PID register keeps naming whichever process ran
    // first — spawn one so the launcher is *not* context 0.
    if (dummy_first) {
        cluster.spawn(1, [](Ctx &ctx) -> Task<void> {
            co_await ctx.compute(100);
        });
    }

    Tick acc = 0;
    cluster.spawn(1, [&, mode, ops](Ctx &ctx) -> Task<void> {
        ctx.setLaunchMode(mode);
        for (int i = 0; i < ops; ++i) {
            const Tick t0 = ctx.now();
            co_await ctx.fetchAdd(seg.word(0), 1);
            acc += ctx.now() - t0;
        }
    });
    if (interference) {
        cluster.spawn(1, [ops](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < ops * 40; ++i)
                co_await ctx.compute(8'000);
        });
    }
    cluster.run(8'000'000'000'000ULL);
    if (!cluster.allDone() || cluster.anyKilled())
        return -1;
    if (Word(ops) != Word(seg.peek(0)))
        return -2; // lost updates: the launch path is broken
    return toUs(acc) / ops;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr int kOps = 300;
    BenchReport report("bench_a1_special_ops", argc, argv);
    std::printf("=== A1: launching special operations "
                "(sections 2.2.4-2.2.5) ===\n");
    std::printf("remote fetch&inc latency, %d ops, node1 -> node0\n\n",
                kOps);

    struct Row
    {
        const char *name;
        Prototype proto;
        LaunchMode mode;
    };
    const Row rows[] = {
        {"OS trap (baseline)", Prototype::TelegraphosII, LaunchMode::OsTrap},
        {"Telegraphos I: PAL + special mode", Prototype::TelegraphosI,
         LaunchMode::Pal},
        {"Telegraphos II: contexts + shadow", Prototype::TelegraphosII,
         LaunchMode::Contexts},
    };

    ResultTable table({"launch path", "quiet (us)",
                       "with time slicing (us)", "correct"});
    double trap_quiet = 0, ctx_quiet = 0;
    for (const Row &r : rows) {
        const double quiet = atomicLatencyUs(r.proto, r.mode, false, kOps);
        const double noisy = atomicLatencyUs(r.proto, r.mode, true, kOps);
        if (r.mode == LaunchMode::OsTrap)
            trap_quiet = quiet;
        if (r.mode == LaunchMode::Contexts)
            ctx_quiet = quiet;
        table.addRow({r.name, ResultTable::num(quiet, 1),
                      ResultTable::num(noisy, 1),
                      (quiet >= 0 && noisy >= 0) ? "yes" : "LOST UPDATES"});
    }

    // FLASH-style PID register (section 2.2.5): correct only when the
    // OS saves/restores it on every context switch.
    {
        const double quiet = atomicLatencyUs(
            Prototype::TelegraphosII, LaunchMode::FlashPid, false, kOps,
            /*flash_os=*/true, /*dummy_first=*/true);
        const double noisy = atomicLatencyUs(
            Prototype::TelegraphosII, LaunchMode::FlashPid, true, kOps,
            /*flash_os=*/true, /*dummy_first=*/true);
        table.addRow({"FLASH-style PID (modified OS)",
                      ResultTable::num(quiet, 1), ResultTable::num(noisy, 1),
                      (quiet >= 0 && noisy >= 0) ? "yes" : "LOST UPDATES"});
    }
    {
        const double quiet = atomicLatencyUs(
            Prototype::TelegraphosII, LaunchMode::FlashPid, false,
            /*ops=*/5, /*flash_os=*/false, /*dummy_first=*/true);
        table.addRow({"FLASH-style PID (stock OS)",
                      quiet >= 0 ? ResultTable::num(quiet, 1) : "-", "-",
                      quiet >= 0 ? "yes" : "LOST UPDATES"});
    }
    table.print();

    std::printf("\nshape check: user-level launches beat the OS trap "
                "(%.1f vs %.1f us => %.1fx); contexts survive preemption "
                "with results intact\n",
                ctx_quiet, trap_quiet, trap_quiet / ctx_quiet);

    report.metric("os_trap_quiet_us", trap_quiet, "us");
    report.metric("contexts_quiet_us", ctx_quiet, "us");
    report.metric("contexts_speedup_x", trap_quiet / ctx_quiet);
    report.write();
    return 0;
}

/**
 * @file
 * Experiment A7: message passing over remote writes vs sockets.
 *
 * Section 3.2: "applications that want to send small messages can do
 * that very efficiently" — the SPSC channel of api/msg.hpp is built
 * entirely from remote writes + fences + a credit return.  We sweep
 * the message size and report one-way latency and sustained
 * throughput against the socket baseline (whose per-message OS costs
 * dominate small messages and amortize for large ones).
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/msg.hpp"
#include "baseline/sockets.hpp"

using namespace tg;

namespace {

struct RunResult
{
    double latencyUs = 0;    ///< one-way, measured at the receiver
    double throughputMBs = 0;///< sustained, pipelined stream
};

RunResult
runChannel(std::size_t words, int msgs)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    MsgChannel ch(cluster, "ch", 0, 1, /*slots=*/16, words);

    RunResult r;
    Tick first_latency = 0;
    Tick stream_start = 0, stream_end = 0;

    cluster.spawn(0, [&](Ctx &ctx) -> Task<void> {
        std::vector<Word> payload(words, 7);
        // One isolated message for the latency figure.
        payload[0] = ctx.now();
        co_await ch.send(ctx, payload);
        co_await ctx.compute(50'000);
        // A pipelined stream for the throughput figure.
        stream_start = ctx.now();
        for (int m = 0; m < msgs; ++m)
            co_await ch.send(ctx, payload);
    });
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        const auto first = co_await ch.recv(ctx);
        first_latency = ctx.now() - Tick(first[0]);
        for (int m = 0; m < msgs; ++m)
            (void)co_await ch.recv(ctx);
        stream_end = ctx.now();
    });
    cluster.run(40'000'000'000'000ULL);

    r.latencyUs = toUs(first_latency);
    const double bytes = double(msgs) * words * 8;
    r.throughputMBs = bytes / toUs(stream_end - stream_start);
    return r;
}

RunResult
runSockets(std::size_t words, int msgs)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    baseline::SocketLayer sockets(cluster);

    RunResult r;
    Tick t_send = 0, first_latency = 0;
    Tick stream_start = 0, stream_end = 0;

    cluster.spawn(0, [&](Ctx &ctx) -> Task<void> {
        t_send = ctx.now();
        co_await sockets.send(ctx, 1, 1, std::uint32_t(words * 8));
        co_await ctx.compute(300'000);
        stream_start = ctx.now();
        for (int m = 0; m < msgs; ++m)
            co_await sockets.send(ctx, 1, 2, std::uint32_t(words * 8));
    });
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await sockets.recv(ctx, 1);
        first_latency = ctx.now() - t_send;
        for (int m = 0; m < msgs; ++m)
            co_await sockets.recv(ctx, 2);
        stream_end = ctx.now();
    });
    cluster.run(40'000'000'000'000ULL);

    r.latencyUs = toUs(first_latency);
    const double bytes = double(msgs) * words * 8;
    r.throughputMBs = bytes / toUs(stream_end - stream_start);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr int kMsgs = 60;
    BenchReport report("bench_a7_messaging", argc, argv);
    std::printf("=== A7: messaging over remote writes vs sockets ===\n\n");

    ResultTable table({"message bytes", "channel lat (us)",
                       "socket lat (us)", "channel MB/s", "socket MB/s"});
    for (std::size_t words : {1u, 4u, 16u, 64u, 256u}) {
        const RunResult ch = runChannel(words, kMsgs);
        const RunResult so = runSockets(words, kMsgs);
        table.addRow({std::to_string(words * 8),
                      ResultTable::num(ch.latencyUs, 1),
                      ResultTable::num(so.latencyUs, 1),
                      ResultTable::num(ch.throughputMBs, 1),
                      ResultTable::num(so.throughputMBs, 1)});
        const std::string b = std::to_string(words * 8);
        report.metric("channel.latency_us.b" + b, ch.latencyUs, "us");
        report.metric("socket.latency_us.b" + b, so.latencyUs, "us");
        report.metric("channel.throughput_mbs.b" + b, ch.throughputMBs,
                      "MB/s");
        report.metric("socket.throughput_mbs.b" + b, so.throughputMBs,
                      "MB/s");
    }
    table.print();

    std::printf("\nshape check: the remote-write channel wins small-"
                "message latency by >10x (the paper's 'small messages' "
                "claim); for multi-KB payloads the word-granular stores "
                "lose to one big packet — bulk data belongs to the HIB "
                "copy engine (section 2.2.2), not to per-word stores\n");
    report.write();
    return 0;
}

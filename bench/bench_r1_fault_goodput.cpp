/**
 * @file
 * Experiment R1: goodput and tail latency under injected wire faults.
 *
 * The reliability layer (CRC + go-back-N retransmission, see DESIGN.md
 * "Fault model & reliability protocol") keeps Telegraphos usable on a
 * lossy ribbon cable at the cost of retransmission bandwidth and tail
 * latency.  This bench quantifies that cost: a 2-node cluster runs a
 * remote-write stream (goodput) and a remote-read loop (p50/p99
 * latency) at increasing per-hop loss rates.
 *
 * Output: a human-readable table plus one machine-readable JSON line
 * (prefix "JSON:") for plotting scripts.
 */

#include <cstdio>
#include <sstream>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "sim/stats.hpp"

using namespace tg;

namespace {

struct RunResult
{
    double lossRate = 0;
    double goodputMBs = 0;   ///< delivered payload MB/s of the write stream
    double p50ReadUs = 0;
    double p99ReadUs = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t crcErrors = 0;
    std::uint64_t wireFailures = 0;
};

RunResult
run(double loss_rate, int writes, int reads)
{
    ClusterSpec spec =
        ClusterSpec::star(2).seed(1).tune([&](Config &c) {
            c.fault.dropRate = loss_rate;
            c.fault.bitErrorRate = loss_rate;
        });
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("target", 8192, /*owner=*/0);

    RunResult out;
    out.lossRate = loss_rate;

    Sampler read_lat;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Goodput: a long write stream, fenced, total payload over time.
        const Tick w0 = ctx.now();
        for (int i = 0; i < writes; ++i)
            co_await ctx.write(seg.word(i % 64), Word(i));
        co_await ctx.fence();
        const double us = toUs(ctx.now() - w0);
        out.goodputMBs = (double(writes) * 8.0) / us; // B/us == MB/s

        // Tail latency: blocking remote reads, sampled individually.
        for (int i = 0; i < reads; ++i) {
            const Tick t0 = ctx.now();
            (void)co_await ctx.read(seg.word(i % 64));
            read_lat.sample(toUs(ctx.now() - t0));
        }
    });
    cluster.run(400'000'000'000ULL);

    out.p50ReadUs = read_lat.quantile(0.50);
    out.p99ReadUs = read_lat.quantile(0.99);
    out.retransmissions = cluster.network().retransmissions();
    out.crcErrors = cluster.network().corruptions();
    out.wireFailures = cluster.network().wireFailures();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_r1_fault_goodput", argc, argv);
    const std::vector<double> rates = {0.0, 1e-6, 1e-4, 1e-2};
    const int writes = 20000;
    const int reads = 2000;

    std::printf("R1: goodput and read latency vs per-hop loss rate "
                "(%d writes, %d reads, 2 nodes)\n\n",
                writes, reads);
    std::printf("  %-10s %12s %12s %12s %10s %10s %8s\n", "loss", "MB/s",
                "p50 rd us", "p99 rd us", "retx", "crc_err", "failed");

    std::vector<RunResult> results;
    for (double r : rates) {
        results.push_back(run(r, writes, reads));
        const RunResult &x = results.back();
        std::printf("  %-10g %12.2f %12.3f %12.3f %10llu %10llu %8llu\n",
                    x.lossRate, x.goodputMBs, x.p50ReadUs, x.p99ReadUs,
                    (unsigned long long)x.retransmissions,
                    (unsigned long long)x.crcErrors,
                    (unsigned long long)x.wireFailures);
    }

    std::printf("\nJSON: {\"bench\":\"r1_fault_goodput\",\"results\":[");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &x = results[i];
        std::printf("%s{\"loss\":%g,\"goodput_mbs\":%.3f,"
                    "\"p50_read_us\":%.4f,\"p99_read_us\":%.4f,"
                    "\"retransmissions\":%llu,\"crc_errors\":%llu,"
                    "\"wire_failures\":%llu}",
                    i ? "," : "", x.lossRate, x.goodputMBs, x.p50ReadUs,
                    x.p99ReadUs, (unsigned long long)x.retransmissions,
                    (unsigned long long)x.crcErrors,
                    (unsigned long long)x.wireFailures);
    }
    std::printf("]}\n");

    for (const RunResult &x : results) {
        std::ostringstream tag;
        tag << "loss" << x.lossRate;
        report.metric(tag.str() + ".goodput_mbs", x.goodputMBs, "MB/s");
        report.metric(tag.str() + ".p50_read_us", x.p50ReadUs, "us");
        report.metric(tag.str() + ".p99_read_us", x.p99ReadUs, "us");
        report.metric(tag.str() + ".retransmissions",
                      double(x.retransmissions));
    }
    report.write();
    return 0;
}

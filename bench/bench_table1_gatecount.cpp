/**
 * @file
 * Experiment T1: reproduce Table 1 of the paper — "Gate Count for
 * Telegraphos I HIB" — from the parametric hardware cost model.
 *
 * Also sweeps the sizing parameters (FIFO depth, multicast entries,
 * counter coverage) as a design ablation; absolute numbers at the
 * default configuration match the paper's rows exactly.
 */

#include <cstdio>

#include "api/measure.hpp"
#include "hwcost/directory_cost.hpp"
#include "hwcost/gate_count.hpp"

using namespace tg;

int
main(int argc, char **argv)
{
    BenchReport report("bench_table1_gatecount", argc, argv);
    std::printf("=== T1: Table 1 — Gate Count for Telegraphos I HIB ===\n\n");
    Config cfg; // defaults reproduce the paper's design point
    auto rows = hwcost::hibGateCount(cfg);
    std::printf("%s\n", hwcost::renderGateCountTable(rows).c_str());

    std::printf("paper reference: message-related 3300 gates / 4.5 Kb, "
                "shared-memory related 2700 gates / 2560 Kb\n\n");

    for (const auto &row : rows) {
        if (row.block == "Subtotal message related") {
            report.anchor("message_related_gates", row.gates, 3300, "gates");
            report.anchor("message_related_sram_kb", row.sramKbits, 4.5,
                          "Kbits");
        } else if (row.block == "Subtotal shared mem. rel.") {
            report.anchor("shared_mem_gates", row.gates, 2700, "gates");
            report.anchor("shared_mem_sram_kb", row.sramKbits, 2560,
                          "Kbits");
        }
    }

    std::printf("--- ablation: multicast list and counter coverage ---\n");
    std::printf("%-34s %14s %16s\n", "configuration", "mcast SRAM(Kb)",
                "counter SRAM(Kb)");
    for (std::uint32_t mcast : {4u * 1024, 16u * 1024, 64u * 1024}) {
        for (std::uint32_t pages : {16u * 1024, 64u * 1024}) {
            Config c;
            c.multicastEntries = mcast;
            c.counterPages = pages;
            auto r = hwcost::hibGateCount(c);
            double mc = 0, pc = 0;
            for (const auto &row : r) {
                if (row.block == "Multicast (eager sharing)")
                    mc = row.sramKbits;
                if (row.block == "Page Access Counters")
                    pc = row.sramKbits;
            }
            std::printf("mcast=%5uK pages=%3uK              %14.0f %16.0f\n",
                        mcast / 1024, pages / 1024, mc, pc);
        }
    }

    // Section 3.1: "If the ownership-counter-based protocol is
    // implemented in future versions of Telegraphos, the directory size
    // will be significantly reduced."
    std::printf("\n--- directory SRAM per node: full map vs owner-based "
                "(section 3.1) ---\n");
    std::printf("%8s %14s %18s %10s\n", "nodes", "full map (Kb)",
                "owner-based (Kb)", "reduction");
    for (std::uint32_t nodes : {4u, 8u, 16u, 32u, 64u}) {
        hwcost::DirectorySpec spec;
        spec.nodes = nodes;
        const double full = hwcost::fullMapDirectoryKbits(spec);
        const double owner = hwcost::ownerBasedDirectoryKbits(spec);
        std::printf("%8u %14.0f %18.0f %9.1fx\n", nodes, full, owner,
                    full / owner);
    }
    report.write();
    return 0;
}

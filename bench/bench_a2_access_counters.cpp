/**
 * @file
 * Experiment A2: page access counters and alarm-driven replication
 * (section 2.2.6, refs [5], [21], [22]).
 *
 * A node repeatedly accesses a mix of hot and cold remote pages.  Three
 * OS policies are compared:
 *   - never replicate (every access remote),
 *   - always replicate up front (even pages barely touched),
 *   - alarm-based: the HIB's access counters trigger replication only
 *     for pages whose access count crosses a threshold.
 *
 * Also includes the remote-memory-paging experiment of ref [21]: paging
 * to remote memory via the HIB copy engine vs paging to a 1995 disk.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "os/replication_policy.hpp"
#include "workload/remote_paging.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

enum class Policy
{
    Never,
    Always,
    Alarm,
};

struct RunResult
{
    double runtimeUs = 0;
    std::uint64_t replicated = 0;
};

RunResult
run(Policy policy, std::uint16_t threshold)
{
    constexpr std::size_t kPages = 8;
    constexpr int kHotAccesses = 400;
    constexpr int kColdAccesses = 4;

    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);

    std::vector<Segment *> pages;
    for (std::size_t p = 0; p < kPages; ++p) {
        pages.push_back(&cluster.allocShared("p" + std::to_string(p), 8192,
                                             /*owner=*/0));
        pages.back()->setReplicationKind(ProtocolKind::OwnerCounter);
    }

    std::unique_ptr<os::AlarmReplicator> repl;
    if (policy == Policy::Alarm) {
        repl = std::make_unique<os::AlarmReplicator>(
            cluster.os(1), threshold, [&](PAddr page, bool) {
                cluster.replicatePageLive(1, page);
            });
        for (auto *seg : pages) {
            seg->armCounters(1, threshold, threshold);
            repl->arm(seg->homePage(0));
        }
    } else if (policy == Policy::Always) {
        for (auto *seg : pages)
            seg->replicate(1, ProtocolKind::OwnerCounter);
    }

    Tick t_end = 0;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Pages 0-1 are hot; the rest cold.
        for (int i = 0; i < kHotAccesses; ++i) {
            for (std::size_t p = 0; p < 2; ++p)
                (void)co_await ctx.read(pages[p]->word(i % 64));
            co_await ctx.compute(1500);
        }
        for (int i = 0; i < kColdAccesses; ++i) {
            for (std::size_t p = 2; p < kPages; ++p)
                (void)co_await ctx.read(pages[p]->word(i));
            co_await ctx.compute(1500);
        }
        t_end = ctx.now();
    });
    cluster.run(40'000'000'000'000ULL);

    RunResult r;
    r.runtimeUs = toUs(t_end);
    for (auto *seg : pages) {
        auto *e = cluster.directory().byHome(seg->homePage(0));
        if (e && e->hasCopy(1))
            ++r.replicated;
    }
    return r;
}

double
pagingRuntimeUs(bool remote_memory)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &backing = cluster.allocShared("backing", 16 * 8192, 0);
    Segment &buf = cluster.allocShared("buf", 4 * 8192, 1);

    workload::PagingConfig cfg;
    cfg.pages = 16;
    cfg.residentPages = 4;
    cfg.accesses = 120;
    cfg.useRemoteMemory = remote_memory;
    workload::PagingStats stats;
    cluster.spawn(1, workload::pagingApp(backing, buf, cfg, &stats));
    const Tick end = cluster.run(400'000'000'000'000ULL);
    return toUs(end);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_a2_access_counters", argc, argv);
    std::printf("=== A2: page access counters -> informed replication "
                "(section 2.2.6) ===\n");
    std::printf("2 hot + 6 cold remote pages; replication policies "
                "compared\n\n");

    ResultTable table(
        {"policy", "runtime (us)", "pages replicated (of 8)"});
    const RunResult never = run(Policy::Never, 0);
    const RunResult always = run(Policy::Always, 0);
    const RunResult alarm = run(Policy::Alarm, 32);
    table.addRow({"never replicate", ResultTable::num(never.runtimeUs, 0),
                  std::to_string(never.replicated)});
    table.addRow({"replicate everything",
                  ResultTable::num(always.runtimeUs, 0),
                  std::to_string(always.replicated)});
    table.addRow({"alarm-based (threshold 32)",
                  ResultTable::num(alarm.runtimeUs, 0),
                  std::to_string(alarm.replicated)});
    table.print();

    std::printf("\n--- ref [21]: remote-memory paging vs disk paging ---\n");
    ResultTable paging({"backing store", "runtime (us)"});
    paging.addRow({"1995 local disk (12 ms/miss)",
                   ResultTable::num(pagingRuntimeUs(false), 0)});
    paging.addRow({"remote memory via HIB copy",
                   ResultTable::num(pagingRuntimeUs(true), 0)});
    paging.print();

    std::printf("\nshape check: alarm policy approaches replicate-all "
                "speed while replicating only the hot pages; remote "
                "memory beats the disk by orders of magnitude\n");

    report.metric("never_runtime_us", never.runtimeUs, "us");
    report.metric("always_runtime_us", always.runtimeUs, "us");
    report.metric("alarm_runtime_us", alarm.runtimeUs, "us");
    report.metric("alarm_pages_replicated", double(alarm.replicated));
    report.metric("paging_disk_us", pagingRuntimeUs(false), "us");
    report.metric("paging_remote_us", pagingRuntimeUs(true), "us");
    report.write();
    return 0;
}

/**
 * @file
 * Experiment A6: data alignment and protocol choice (reference [22]).
 *
 * The paper cites the authors' trace-driven MASCOTS'94 study — "Data-
 * Alignment and Other Factors affecting Update and Invalidate Based
 * Coherent Memory" — as the evidence behind leaving protocol decisions
 * to software (section 2.3.6).  We reproduce the study's core effect on
 * our substrate: with *aligned* data (each node's words packed in its
 * own region) an invalidate protocol at page granularity behaves
 * tolerably; with *interleaved* data (false sharing) invalidations
 * thrash while the update protocol degrades only mildly.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/trace_replay.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

double
run(ProtocolKind kind, bool aligned, std::size_t parties)
{
    ClusterSpec spec = ClusterSpec::star(parties);
    Cluster cluster(spec);
    // One page per node: the alignment knob decides whether each node's
    // data stays within "its" page or interleaves across all of them.
    Segment &seg = cluster.allocShared("pages", parties * 8192, 0);
    for (NodeId n = 1; n < NodeId(parties); ++n)
        seg.replicate(n, kind);

    workload::TraceConfig cfg;
    cfg.aligned = aligned;
    cfg.accesses = 200;
    cfg.writeFraction = 0.3;
    cfg.shareFraction = 0.25;
    for (NodeId n = 0; n < NodeId(parties); ++n) {
        cluster.spawn(n, workload::traceReplayer(
                             seg,
                             workload::generateTrace(cfg, n, parties),
                             cfg.gap));
    }
    const Tick end = cluster.run(40'000'000'000'000ULL);
    return cluster.allDone() ? toUs(end) : -1;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_a6_alignment", argc, argv);
    std::printf("=== A6: data alignment vs protocol choice "
                "(reference [22]) ===\n");
    std::printf("3 nodes replay seeded sharing traces over one "
                "replicated page\n\n");

    ResultTable table({"data layout", "update protocol (us)",
                       "invalidate protocol (us)", "inval penalty"});
    for (bool aligned : {true, false}) {
        const double upd = run(ProtocolKind::OwnerCounter, aligned, 3);
        const double inv = run(ProtocolKind::Invalidate, aligned, 3);
        table.addRow({aligned ? "aligned (packed regions)"
                              : "interleaved (false sharing)",
                      ResultTable::num(upd, 0), ResultTable::num(inv, 0),
                      ResultTable::num(inv / upd, 1) + "x"});
        const std::string lay = aligned ? "aligned" : "interleaved";
        report.metric(lay + ".update_us", upd, "us");
        report.metric(lay + ".invalidate_us", inv, "us");
    }
    table.print();

    std::printf("\nshape check: misalignment hurts the invalidate "
                "protocol far more than the update protocol — the [22] "
                "result that motivates software-selectable coherence\n");
    report.write();
    return 0;
}

/**
 * @file
 * Experiment S2: counter-cache sizing (section 2.3.4).
 *
 * "We expect that a cache that holds 16-32 entries will have enough
 * space to hold all outstanding counters for most applications."
 *
 * Sweep the CAM size under bursty unsynchronized writers and report
 * stall events, total stall time, and the peak number of simultaneously
 * live counters.  The expected shape: stalls vanish around 16-32
 * entries.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;
using coherence::ProtocolKind;

namespace {

struct RunResult
{
    std::uint64_t stalls = 0;
    double stallUs = 0;
    std::size_t peak = 0;
    double runtimeUs = 0;
};

RunResult
run(std::uint32_t cam_entries, int burst, std::uint64_t seed)
{
    ClusterSpec spec =
        ClusterSpec::star(3).seed(seed).tune(
            [&](Config &c) { c.counterCacheEntries = cam_entries; });
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("page", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);
    seg.replicate(2, ProtocolKind::OwnerCounter);

    // Two non-owner writers issue bursts of stores to distinct words:
    // each store needs a live counter until its reflection returns.
    for (NodeId n = 1; n <= 2; ++n) {
        cluster.spawn(n, [&, burst](Ctx &ctx) -> Task<void> {
            for (int round = 0; round < 6; ++round) {
                for (int i = 0; i < burst; ++i)
                    co_await ctx.write(
                        seg.word((i + round * burst) % 512),
                        Word(round) * 1000 + i);
                co_await ctx.fence();
                co_await ctx.compute(20'000);
            }
        });
    }
    const Tick end = cluster.run(8'000'000'000'000ULL);

    RunResult r;
    for (NodeId n = 1; n <= 2; ++n) {
        r.stalls += cluster.hibOf(n).counterCache().stallEvents();
        r.stallUs += toUs(cluster.hibOf(n).counterCache().stallTicks());
        r.peak = std::max(r.peak, cluster.hibOf(n).counterCache().peakUsed());
    }
    r.runtimeUs = toUs(end);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_s2_counter_cache", argc, argv);
    std::printf("=== S2: pending-write counter cache sizing "
                "(section 2.3.4) ===\n");
    std::printf("bursty unsynchronized writers; stalls when the CAM is "
                "full\n\n");

    for (int burst : {16, 48}) {
        std::printf("--- burst of %d writes per round ---\n", burst);
        ResultTable table({"CAM entries", "stall events", "stall time (us)",
                           "peak live counters", "runtime (us)"});
        for (std::uint32_t cam : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            const RunResult r = run(cam, burst, 7);
            table.addRow({std::to_string(cam), std::to_string(r.stalls),
                          ResultTable::num(r.stallUs, 1),
                          std::to_string(r.peak),
                          ResultTable::num(r.runtimeUs, 0)});
            const std::string tag = "burst" + std::to_string(burst) +
                                    ".cam" + std::to_string(cam);
            report.metric(tag + ".stalls", double(r.stalls));
            report.metric(tag + ".runtime_us", r.runtimeUs, "us");
        }
        table.print();
        std::printf("\n");
    }

    std::printf("shape check: stall events drop to ~0 by 16-32 entries "
                "(the paper's expectation)\n");
    report.write();
    return 0;
}

/**
 * @file
 * Experiment P2: batched remote writes (paper section 3.2).
 *
 * "A stream of 100 remote write operations takes less than 50 usec, thus
 * each of the remote write operations takes less than 0.5 usec ... short
 * batches of write operations may take advantage of Telegraphos
 * queueing", while "long batches are eventually performed at the network
 * transfer rate" (~0.70 us/write).
 *
 * Sweep the batch size and report per-write cost as seen by the
 * programmer (time from first store to last store completing, no fence).
 * Expected shape: small batches at write-buffer/TurboChannel speed,
 * crossing over to the network rate as the HIB queue fills.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;

namespace {

double
batchPerWriteUs(int batch)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &seg = cluster.allocShared("target", 8192, 0);

    double out = 0;
    cluster.spawn(1, [&, batch](Ctx &ctx) -> Task<void> {
        // Warm the TLB so the measurement matches steady state.
        co_await ctx.write(seg.word(0), 0);
        co_await ctx.fence();

        const Tick t0 = ctx.now();
        for (int i = 0; i < batch; ++i)
            co_await ctx.write(seg.word(i % 64), Word(i));
        out = toUs(ctx.now() - t0) / batch;
        co_await ctx.fence();
    });
    cluster.run(2'000'000'000'000ULL);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("bench_p2_write_batch", argc, argv);
    std::printf("=== P2: remote-write batches (section 3.2) ===\n\n");

    ResultTable table({"batch size", "us per write", "batch total (us)",
                       "paper expectation"});
    for (int batch : {1, 2, 5, 10, 50, 100, 200, 500, 1000, 5000}) {
        const double us = batchPerWriteUs(batch);
        const char *expect = batch == 100    ? "< 0.5 (100 in < 50 us)"
                             : batch >= 1000 ? "-> 0.70 (network rate)"
                                             : "";
        table.addRow({std::to_string(batch), ResultTable::num(us),
                      ResultTable::num(us * batch, 1), expect});
    }
    table.print();

    const double b100 = batchPerWriteUs(100);
    const double b5000 = batchPerWriteUs(5000);
    std::printf("\nshape check: 100-write batch %.2f us/write (paper < 0.5); "
                "long stream %.2f us/write (paper ~0.70)\n", b100, b5000);

    report.anchor("batch100_us_per_write", b100, 0.5);
    report.anchor("batch5000_us_per_write", b5000, 0.70);
    report.write();
    return (b100 < 0.5 && b5000 > 0.6) ? 0 : 1;
}
